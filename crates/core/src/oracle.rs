//! OD-oracle precompute (ROADMAP item 4): a checksummed artifact of
//! precomputed TTE answers keyed on `(origin cell, destination cell,
//! weekly time slot)`.
//!
//! Production OD workloads are dominated by repeated queries over a small
//! hot set of origin/destination areas ("Origin-Destination Travel Time
//! Oracle for Map-based Services", PAPERS.md). The oracle exploits that: a
//! `deepod precompute` pass bulk-runs [`DeepOdModel::estimate_batch`] over
//! the hot OD matrix — the top-K grid cells by trajectory frequency
//! crossed with the busiest weekly slots — and freezes the answers into an
//! [`OdOracle`] artifact the serving tier consults before spending worker
//! capacity.
//!
//! **Key scheme.** Space is discretized by [`OdKeyer`]: a fixed grid over
//! the road network's bounding box (`cell_meters` per side, points
//! outside the box clamp to the border cells). Time is discretized by the
//! model's own [`TimeSlots`] and wrapped onto the weekly temporal graph —
//! the same slot attribution the feature encoder uses, which is why the
//! slot-boundary determinism fixed in [`crate::timeslot`] is load-bearing
//! here: an edge timestamp that flapped between neighboring slots would
//! alias two different cache entries.
//!
//! **Canonical answers.** Each oracle entry stores the model's answer for
//! the *canonical* request of its key: origin/destination at the cell
//! centers, departing exactly at the slot's start (remainder 0, first
//! week). Serving a nearby request from the oracle is an approximation by
//! construction (documented in DESIGN.md §15); the drift gate in
//! `deepod-eval` verifies the canonical answers stay **bit-identical** to
//! a fresh `estimate_batch` run for the same model version.
//!
//! **Versioning.** The artifact embeds a fingerprint of the model file it
//! was computed from ([`model_fingerprint`]); the serving tier refuses to
//! use an oracle whose fingerprint does not match the model it loaded.

use crate::features::FeatureContext;
use crate::io_guard::{self, IoGuardError};
use crate::model::{DeepOdModel, PredictRequest};
use crate::timeslot::TimeSlots;
use deepod_roadnet::{Point, RoadNetwork};
use deepod_traj::{CityDataset, OdInput};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Artifact format version; bumped on breaking layout changes.
pub const ORACLE_VERSION: u32 = 1;

/// A typed oracle-artifact failure.
#[derive(Debug)]
pub enum OracleError {
    /// The guarded read or write failed (missing file, checksum mismatch,
    /// truncated artifact — see [`IoGuardError::is_corruption`]).
    Io(IoGuardError),
    /// The artifact parsed as JSON but not as an oracle.
    Format(String),
    /// The artifact is from an incompatible format version.
    Version {
        /// Version found in the artifact.
        found: u32,
    },
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::Io(e) => write!(f, "oracle io failed: {e}"),
            OracleError::Format(why) => write!(f, "oracle artifact malformed: {why}"),
            OracleError::Version { found } => write!(
                f,
                "oracle artifact version {found} is not supported (expected {ORACLE_VERSION})"
            ),
        }
    }
}

impl std::error::Error for OracleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OracleError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IoGuardError> for OracleError {
    fn from(e: IoGuardError) -> Self {
        OracleError::Io(e)
    }
}

/// Fingerprint of a serialized model artifact (FNV-1a over the exact
/// bytes), rendered as fixed-width hex so it survives JSON round-trips
/// losslessly. Both `deepod precompute` and `deepod serve` fingerprint
/// the model *file*, so any retrain invalidates the oracle.
pub fn model_fingerprint(model_bytes: &[u8]) -> String {
    format!("{:016x}", io_guard::fnv1a64(model_bytes))
}

/// The cache/oracle key: origin cell, destination cell, weekly time slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OracleKey {
    /// Origin grid cell (row-major index).
    pub origin_cell: u32,
    /// Destination grid cell.
    pub dest_cell: u32,
    /// Weekly temporal-graph node of the departure slot.
    pub week_slot: u32,
}

/// Maps raw OD requests onto [`OracleKey`]s: a fixed spatial grid over the
/// road network bounding box plus the model's slot discretization.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct OdKeyer {
    /// Grid origin (bounding-box minimum corner).
    pub x0: f64,
    /// See `x0`.
    pub y0: f64,
    /// Cell side length in meters.
    pub cell_meters: f64,
    /// Grid width in cells.
    pub nx: u32,
    /// Grid height in cells.
    pub ny: u32,
    /// The slot discretization (shared with the feature encoder).
    pub slots: TimeSlots,
}

impl OdKeyer {
    /// Builds a keyer covering `net`'s bounding box with `cell_meters`
    /// cells (clamped to at least 1 m).
    pub fn for_network(net: &RoadNetwork, cell_meters: f64, slots: TimeSlots) -> OdKeyer {
        let (min, max) = net.bounding_box();
        let cell = if cell_meters.is_finite() && cell_meters >= 1.0 {
            cell_meters
        } else {
            1.0
        };
        let nx = deepod_tensor::ceil_count(((max.x - min.x).max(0.0) / cell).min(1e6)).max(1);
        let ny = deepod_tensor::ceil_count(((max.y - min.y).max(0.0) / cell).min(1e6)).max(1);
        OdKeyer {
            x0: min.x,
            y0: min.y,
            cell_meters: cell,
            nx: nx as u32, // deepod-lint: allow(truncating-cast) — capped at 1e6
            ny: ny as u32, // deepod-lint: allow(truncating-cast) — capped at 1e6
            slots,
        }
    }

    /// Total number of grid cells.
    pub fn num_cells(&self) -> u32 {
        self.nx.saturating_mul(self.ny)
    }

    /// Cell of a point; coordinates outside the grid clamp to the border
    /// cells, so every finite point keys deterministically.
    pub fn cell_of(&self, p: &Point) -> u32 {
        let ix = deepod_tensor::floor_coord(((p.x - self.x0) / self.cell_meters).max(0.0))
            .clamp(0, i64::from(self.nx) - 1);
        let iy = deepod_tensor::floor_coord(((p.y - self.y0) / self.cell_meters).max(0.0))
            .clamp(0, i64::from(self.ny) - 1);
        // In-range by the clamps above.
        (iy as u32)
            .saturating_mul(self.nx)
            .saturating_add(ix as u32) // deepod-lint: allow(truncating-cast)
    }

    /// Center point of a cell (row-major index; out-of-range indices clamp
    /// to the last cell).
    pub fn cell_center(&self, cell: u32) -> Point {
        let cell = cell.min(self.num_cells().saturating_sub(1));
        let ix = cell % self.nx.max(1);
        let iy = cell / self.nx.max(1);
        Point::new(
            self.x0 + (f64::from(ix) + 0.5) * self.cell_meters,
            self.y0 + (f64::from(iy) + 0.5) * self.cell_meters,
        )
    }

    /// The key of a raw OD request; `None` when the departure time is
    /// before the dataset epoch (or not finite) — those must be rejected
    /// upstream rather than aliased onto slot 0's entry.
    pub fn key_of(&self, od: &OdInput) -> Option<OracleKey> {
        if !od.origin.x.is_finite()
            || !od.origin.y.is_finite()
            || !od.destination.x.is_finite()
            || !od.destination.y.is_finite()
        {
            return None;
        }
        let (slot, _) = self.slots.slot_rem_checked(od.depart)?;
        Some(OracleKey {
            origin_cell: self.cell_of(&od.origin),
            dest_cell: self.cell_of(&od.destination),
            week_slot: self.slots.week_node(slot) as u32, // deepod-lint: allow(truncating-cast) — < slots_per_week
        })
    }

    /// The canonical request of a key: cell centers, departing exactly at
    /// the slot start of the *first* week (remainder 0 — deterministic by
    /// the boundary-snap contract of [`TimeSlots::slot_rem`]). The weather
    /// input is the dataset's condition at that canonical time, matching
    /// what the serve path would attach.
    pub fn canonical_od(&self, key: OracleKey, ds: &CityDataset) -> OdInput {
        let depart = self.slots.t0 + f64::from(key.week_slot) * self.slots.dt;
        OdInput {
            origin: self.cell_center(key.origin_cell),
            destination: self.cell_center(key.dest_cell),
            depart,
            weather: ds.traffic.weather().at(depart),
        }
    }
}

/// One precomputed answer.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct OracleEntry {
    /// The key this answer is canonical for.
    pub key: OracleKey,
    /// The model's canonical ETA in seconds.
    pub eta_seconds: f32,
}

/// The precomputed OD-oracle artifact.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OdOracle {
    /// Artifact format version ([`ORACLE_VERSION`]).
    pub version: u32,
    /// The key scheme the entries were computed under.
    pub keyer: OdKeyer,
    /// Hex fingerprint of the model file ([`model_fingerprint`]).
    pub model_fingerprint: String,
    /// Sorted by key (binary-searchable, deterministic bytes).
    pub entries: Vec<OracleEntry>,
}

impl OdOracle {
    /// Looks up the canonical answer for a key.
    pub fn lookup(&self, key: OracleKey) -> Option<f32> {
        self.entries
            .binary_search_by(|e| e.key.cmp(&key))
            .ok()
            .and_then(|i| self.entries.get(i))
            .map(|e| e.eta_seconds)
    }

    /// Serializes and writes the artifact through [`io_guard`]
    /// (atomic temp-file rename, checksummed container).
    pub fn save(&self, path: &std::path::Path) -> Result<(), OracleError> {
        let json = serde_json::to_string(self).map_err(|e| OracleError::Format(e.to_string()))?;
        io_guard::write_checksummed(path, json.as_bytes())?;
        Ok(())
    }

    /// Reads and verifies an artifact: io_guard checksum first (corrupt
    /// bytes surface as [`OracleError::Io`] with
    /// [`IoGuardError::is_corruption`] true), then format version.
    pub fn load(path: &std::path::Path) -> Result<OdOracle, OracleError> {
        let bytes = io_guard::read_checksummed(path)?;
        let json = String::from_utf8(bytes)
            .map_err(|_| OracleError::Format("artifact is not UTF-8".into()))?;
        let oracle: OdOracle =
            serde_json::from_str(&json).map_err(|e| OracleError::Format(e.to_string()))?;
        if oracle.version != ORACLE_VERSION {
            return Err(OracleError::Version {
                found: oracle.version,
            });
        }
        Ok(oracle)
    }
}

/// Knobs of the precompute pass.
#[derive(Clone, Copy, Debug)]
pub struct PrecomputeSpec {
    /// Top-K grid cells by trajectory endpoint frequency.
    pub cells: usize,
    /// Top-N weekly slots by departure frequency.
    pub slots: usize,
    /// Grid cell side length in meters.
    pub cell_meters: f64,
}

impl Default for PrecomputeSpec {
    fn default() -> Self {
        PrecomputeSpec {
            cells: 8,
            slots: 16,
            cell_meters: 500.0,
        }
    }
}

/// The hot keys of a dataset under a keyer: the top-`cells` grid cells by
/// train-trajectory endpoint frequency crossed with the top-`slots`
/// weekly slots by departure frequency. Deterministic: ties break on the
/// smaller cell/slot index.
pub fn hot_keys(keyer: &OdKeyer, ds: &CityDataset, spec: &PrecomputeSpec) -> Vec<OracleKey> {
    let mut cell_freq: HashMap<u32, u64> = HashMap::new();
    let mut slot_freq: HashMap<u32, u64> = HashMap::new();
    for order in &ds.train {
        *cell_freq
            .entry(keyer.cell_of(&order.od.origin))
            .or_insert(0) += 1;
        *cell_freq
            .entry(keyer.cell_of(&order.od.destination))
            .or_insert(0) += 1;
        if let Some((slot, _)) = keyer.slots.slot_rem_checked(order.od.depart) {
            let node = keyer.slots.week_node(slot) as u32; // deepod-lint: allow(truncating-cast) — < slots_per_week
            *slot_freq.entry(node).or_insert(0) += 1;
        }
    }
    let top_cells = top_by_freq(cell_freq, spec.cells);
    let top_slots = top_by_freq(slot_freq, spec.slots);
    let mut keys = Vec::with_capacity(top_cells.len() * top_cells.len() * top_slots.len());
    for &oc in &top_cells {
        for &dc in &top_cells {
            for &s in &top_slots {
                keys.push(OracleKey {
                    origin_cell: oc,
                    dest_cell: dc,
                    week_slot: s,
                });
            }
        }
    }
    keys
}

/// Top-`k` ids by count, descending; equal counts order by ascending id
/// so the selection is independent of `HashMap` iteration order.
fn top_by_freq(freq: HashMap<u32, u64>, k: usize) -> Vec<u32> {
    let mut pairs: Vec<(u32, u64)> = freq.into_iter().collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    pairs.truncate(k);
    pairs.into_iter().map(|(id, _)| id).collect()
}

/// Runs the precompute pass: builds the canonical request of every hot
/// key, bulk-answers them through [`DeepOdModel::estimate_batch`] (the
/// existing parallel map — bit-identical for any `threads`), and returns
/// the artifact. Keys whose canonical endpoints cannot be matched to the
/// road network are skipped, not failed.
pub fn precompute(
    model: &DeepOdModel,
    ctx: &FeatureContext,
    ds: &CityDataset,
    spec: &PrecomputeSpec,
    fingerprint: String,
    threads: usize,
) -> OdOracle {
    let keyer = OdKeyer::for_network(&ds.net, spec.cell_meters, *ctx.slots());
    let keys = hot_keys(&keyer, ds, spec);
    let reqs: Vec<PredictRequest> = keys
        .iter()
        .map(|&k| PredictRequest::Raw(keyer.canonical_od(k, ds)))
        .collect();
    let answers = model.estimate_batch(ctx, &ds.net, &reqs, threads);
    let mut entries: Vec<OracleEntry> = keys
        .into_iter()
        .zip(answers)
        .filter_map(|(key, res)| {
            res.ok().map(|resp| OracleEntry {
                key,
                eta_seconds: resp.eta_seconds,
            })
        })
        .collect();
    entries.sort_by_key(|e| e.key);
    OdOracle {
        version: ORACLE_VERSION,
        keyer,
        model_fingerprint: fingerprint,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeepOdConfig;
    use deepod_roadnet::CityProfile;
    use deepod_traj::{DatasetBuilder, DatasetConfig};

    fn fixture() -> (CityDataset, FeatureContext, DeepOdModel) {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 60));
        let cfg = DeepOdConfig {
            ds: 4,
            dt_dim: 4,
            d1m: 4,
            d2m: 4,
            d3m: 4,
            d4m: 4,
            d5m: 4,
            d6m: 4,
            d7m: 4,
            d9m: 4,
            dh: 4,
            dtraf: 4,
            ..DeepOdConfig::default()
        };
        let ctx = FeatureContext::build(&ds, cfg.slot_seconds).expect("valid slot size");
        let model = DeepOdModel::new(&cfg, &ds, &ctx).expect("valid test config");
        (ds, ctx, model)
    }

    #[test]
    fn keyer_clamps_and_round_trips_cells() {
        let (ds, ctx, _) = fixture();
        let keyer = OdKeyer::for_network(&ds.net, 500.0, *ctx.slots());
        assert!(keyer.nx >= 1 && keyer.ny >= 1);
        // Center of every cell keys back to that cell.
        for cell in [0, keyer.num_cells() / 2, keyer.num_cells() - 1] {
            assert_eq!(keyer.cell_of(&keyer.cell_center(cell)), cell);
        }
        // Far-out points clamp to border cells instead of panicking.
        let far = Point::new(-1e9, 1e9);
        assert!(keyer.cell_of(&far) < keyer.num_cells());
    }

    #[test]
    fn key_of_rejects_pre_epoch_departures() {
        let (ds, ctx, _) = fixture();
        let keyer = OdKeyer::for_network(&ds.net, 500.0, *ctx.slots());
        let mut od = ds.train[0].od;
        assert!(keyer.key_of(&od).is_some());
        od.depart = -1.0;
        assert!(
            keyer.key_of(&od).is_none(),
            "pre-epoch must not alias slot 0"
        );
        od.depart = f64::NAN;
        assert!(keyer.key_of(&od).is_none());
    }

    #[test]
    fn precompute_answers_are_bit_identical_to_fresh_estimates() {
        let (ds, ctx, model) = fixture();
        let spec = PrecomputeSpec {
            cells: 4,
            slots: 4,
            cell_meters: 500.0,
        };
        let oracle = precompute(&model, &ctx, &ds, &spec, "test".into(), 1);
        assert!(!oracle.entries.is_empty(), "hot matrix produced no entries");
        // Recompute every canonical request fresh, with a different thread
        // count, and demand bit-identity.
        let reqs: Vec<PredictRequest> = oracle
            .entries
            .iter()
            .map(|e| PredictRequest::Raw(oracle.keyer.canonical_od(e.key, &ds)))
            .collect();
        let fresh = model.estimate_batch(&ctx, &ds.net, &reqs, 4);
        for (entry, res) in oracle.entries.iter().zip(fresh) {
            let resp = res.expect("canonical request stays matchable");
            assert_eq!(
                entry.eta_seconds.to_bits(),
                resp.eta_seconds.to_bits(),
                "oracle drift at {:?}",
                entry.key
            );
        }
    }

    #[test]
    fn artifact_round_trips_and_rejects_corruption() {
        let (ds, ctx, model) = fixture();
        let spec = PrecomputeSpec {
            cells: 2,
            slots: 2,
            cell_meters: 500.0,
        };
        let oracle = precompute(&model, &ctx, &ds, &spec, "fp".into(), 1);
        let dir = std::env::temp_dir().join(format!("deepod-oracle-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("oracle.json");
        oracle.save(&path).expect("save artifact");
        let loaded = OdOracle::load(&path).expect("load artifact");
        assert_eq!(loaded.entries.len(), oracle.entries.len());
        assert_eq!(loaded.model_fingerprint, "fp");
        for e in &oracle.entries {
            assert_eq!(loaded.lookup(e.key), Some(e.eta_seconds));
        }
        assert_eq!(
            loaded.lookup(OracleKey {
                origin_cell: u32::MAX,
                dest_cell: u32::MAX,
                week_slot: u32::MAX
            }),
            None
        );
        // Flip one payload byte: the checksummed read must fail as
        // corruption, not parse garbage.
        let mut bytes = std::fs::read(&path).expect("raw artifact");
        bytes[10] ^= 0x40;
        std::fs::write(&path, &bytes).expect("corrupt artifact");
        match OdOracle::load(&path) {
            Err(OracleError::Io(e)) => assert!(e.is_corruption(), "unexpected: {e}"),
            other => panic!("corrupt artifact must fail as Io, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hot_keys_are_deterministic_and_bounded() {
        let (ds, ctx, _) = fixture();
        let keyer = OdKeyer::for_network(&ds.net, 500.0, *ctx.slots());
        let spec = PrecomputeSpec {
            cells: 3,
            slots: 5,
            cell_meters: 500.0,
        };
        let a = hot_keys(&keyer, &ds, &spec);
        let b = hot_keys(&keyer, &ds, &spec);
        assert_eq!(a, b, "hot-key selection must not depend on map order");
        assert!(a.len() <= 3 * 3 * 5);
    }
}

//! OD-oracle precompute (ROADMAP item 4): a checksummed artifact of
//! precomputed TTE answers keyed on `(origin cell, destination cell,
//! weekly time slot)`.
//!
//! Production OD workloads are dominated by repeated queries over a small
//! hot set of origin/destination areas ("Origin-Destination Travel Time
//! Oracle for Map-based Services", PAPERS.md). The oracle exploits that: a
//! `deepod precompute` pass bulk-runs [`DeepOdModel::estimate_batch`] over
//! the hot OD matrix — the top-K grid cells by trajectory frequency
//! crossed with the busiest weekly slots — and freezes the answers into an
//! [`OdOracle`] artifact the serving tier consults before spending worker
//! capacity.
//!
//! **Key scheme.** Space is discretized by [`OdKeyer`]: a fixed grid over
//! the road network's bounding box (`cell_meters` per side, points
//! outside the box clamp to the border cells). Time is discretized by the
//! model's own [`TimeSlots`] and wrapped onto the weekly temporal graph —
//! the same slot attribution the feature encoder uses, which is why the
//! slot-boundary determinism fixed in [`crate::timeslot`] is load-bearing
//! here: an edge timestamp that flapped between neighboring slots would
//! alias two different cache entries.
//!
//! **Canonical answers.** Each oracle entry stores the model's answer for
//! the *canonical* request of its key: origin/destination at the cell
//! centers, departing exactly at the slot's start (remainder 0, first
//! week). Serving a nearby request from the oracle is an approximation by
//! construction (documented in DESIGN.md §15); the drift gate in
//! `deepod-eval` verifies the canonical answers stay **bit-identical** to
//! a fresh `estimate_batch` run for the same model version.
//!
//! **Versioning.** The artifact embeds a fingerprint of the model file it
//! was computed from ([`model_fingerprint`]); the serving tier refuses to
//! use an oracle whose fingerprint does not match the model it loaded.
//!
//! **On-disk encoding.** [`OdOracle::save`] writes a compact binary
//! payload (magic `DPODORC2`, little-endian header + 16-byte records)
//! inside the same checksummed [`io_guard`] container as every other
//! artifact; at the hot-key scale the paper's workloads imply, the JSON
//! encoding was ~5× the bytes and dominated precompute I/O.
//! [`OdOracle::load`] sniffs the payload magic and falls back to the
//! original JSON encoding, so artifacts written before the binary format
//! keep loading unchanged. The embedded version field is checked in both
//! encodings; the rebuilt [`TimeSlots`] goes back through its validating
//! constructor so a hand-edited `dt` cannot smuggle in a skewed weekly
//! wrap.

use crate::features::FeatureContext;
use crate::io_guard::{self, IoGuardError};
use crate::model::{DeepOdModel, PredictRequest};
use crate::timeslot::TimeSlots;
use deepod_roadnet::{Point, RoadNetwork};
use deepod_traj::{CityDataset, OdInput};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Artifact format version; bumped on breaking layout changes.
pub const ORACLE_VERSION: u32 = 1;

/// A typed oracle-artifact failure.
#[derive(Debug)]
pub enum OracleError {
    /// The guarded read or write failed (missing file, checksum mismatch,
    /// truncated artifact — see [`IoGuardError::is_corruption`]).
    Io(IoGuardError),
    /// The artifact parsed as JSON but not as an oracle.
    Format(String),
    /// The artifact is from an incompatible format version.
    Version {
        /// Version found in the artifact.
        found: u32,
    },
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::Io(e) => write!(f, "oracle io failed: {e}"),
            OracleError::Format(why) => write!(f, "oracle artifact malformed: {why}"),
            OracleError::Version { found } => write!(
                f,
                "oracle artifact version {found} is not supported (expected {ORACLE_VERSION})"
            ),
        }
    }
}

impl std::error::Error for OracleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OracleError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IoGuardError> for OracleError {
    fn from(e: IoGuardError) -> Self {
        OracleError::Io(e)
    }
}

/// Fingerprint of a serialized model artifact (FNV-1a over the exact
/// bytes), rendered as fixed-width hex so it survives JSON round-trips
/// losslessly. Both `deepod precompute` and `deepod serve` fingerprint
/// the model *file*, so any retrain invalidates the oracle.
pub fn model_fingerprint(model_bytes: &[u8]) -> String {
    format!("{:016x}", io_guard::fnv1a64(model_bytes))
}

/// The cache/oracle key: origin cell, destination cell, weekly time slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OracleKey {
    /// Origin grid cell (row-major index).
    pub origin_cell: u32,
    /// Destination grid cell.
    pub dest_cell: u32,
    /// Weekly temporal-graph node of the departure slot.
    pub week_slot: u32,
}

/// Maps raw OD requests onto [`OracleKey`]s: a fixed spatial grid over the
/// road network bounding box plus the model's slot discretization.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct OdKeyer {
    /// Grid origin (bounding-box minimum corner).
    pub x0: f64,
    /// See `x0`.
    pub y0: f64,
    /// Cell side length in meters.
    pub cell_meters: f64,
    /// Grid width in cells.
    pub nx: u32,
    /// Grid height in cells.
    pub ny: u32,
    /// The slot discretization (shared with the feature encoder).
    pub slots: TimeSlots,
}

impl OdKeyer {
    /// Builds a keyer covering `net`'s bounding box with `cell_meters`
    /// cells (clamped to at least 1 m).
    pub fn for_network(net: &RoadNetwork, cell_meters: f64, slots: TimeSlots) -> OdKeyer {
        let (min, max) = net.bounding_box();
        let cell = if cell_meters.is_finite() && cell_meters >= 1.0 {
            cell_meters
        } else {
            1.0
        };
        let nx = deepod_tensor::ceil_count(((max.x - min.x).max(0.0) / cell).min(1e6)).max(1);
        let ny = deepod_tensor::ceil_count(((max.y - min.y).max(0.0) / cell).min(1e6)).max(1);
        OdKeyer {
            x0: min.x,
            y0: min.y,
            cell_meters: cell,
            nx: nx as u32, // deepod-lint: allow(truncating-cast) — capped at 1e6
            ny: ny as u32, // deepod-lint: allow(truncating-cast) — capped at 1e6
            slots,
        }
    }

    /// Total number of grid cells.
    pub fn num_cells(&self) -> u32 {
        self.nx.saturating_mul(self.ny)
    }

    /// Cell of a point; coordinates outside the grid clamp to the border
    /// cells, so every finite point keys deterministically.
    pub fn cell_of(&self, p: &Point) -> u32 {
        let ix = deepod_tensor::floor_coord(((p.x - self.x0) / self.cell_meters).max(0.0))
            .clamp(0, i64::from(self.nx) - 1);
        let iy = deepod_tensor::floor_coord(((p.y - self.y0) / self.cell_meters).max(0.0))
            .clamp(0, i64::from(self.ny) - 1);
        // In-range by the clamps above.
        (iy as u32)
            .saturating_mul(self.nx)
            .saturating_add(ix as u32) // deepod-lint: allow(truncating-cast)
    }

    /// Center point of a cell (row-major index; out-of-range indices clamp
    /// to the last cell).
    pub fn cell_center(&self, cell: u32) -> Point {
        let cell = cell.min(self.num_cells().saturating_sub(1));
        let ix = cell % self.nx.max(1);
        let iy = cell / self.nx.max(1);
        Point::new(
            self.x0 + (f64::from(ix) + 0.5) * self.cell_meters,
            self.y0 + (f64::from(iy) + 0.5) * self.cell_meters,
        )
    }

    /// The key of a raw OD request; `None` when the departure time is
    /// before the dataset epoch (or not finite) — those must be rejected
    /// upstream rather than aliased onto slot 0's entry.
    pub fn key_of(&self, od: &OdInput) -> Option<OracleKey> {
        if !od.origin.x.is_finite()
            || !od.origin.y.is_finite()
            || !od.destination.x.is_finite()
            || !od.destination.y.is_finite()
        {
            return None;
        }
        let (slot, _) = self.slots.slot_rem_checked(od.depart)?;
        Some(OracleKey {
            origin_cell: self.cell_of(&od.origin),
            dest_cell: self.cell_of(&od.destination),
            week_slot: self.slots.week_node(slot) as u32, // deepod-lint: allow(truncating-cast) — < slots_per_week
        })
    }

    /// The canonical request of a key: cell centers, departing exactly at
    /// the slot start of the *first* week (remainder 0 — deterministic by
    /// the boundary-snap contract of [`TimeSlots::slot_rem`]). The weather
    /// input is the dataset's condition at that canonical time, matching
    /// what the serve path would attach.
    pub fn canonical_od(&self, key: OracleKey, ds: &CityDataset) -> OdInput {
        let depart = self.slots.t0 + f64::from(key.week_slot) * self.slots.dt;
        OdInput {
            origin: self.cell_center(key.origin_cell),
            destination: self.cell_center(key.dest_cell),
            depart,
            weather: ds.traffic.weather().at(depart),
        }
    }
}

/// One precomputed answer.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct OracleEntry {
    /// The key this answer is canonical for.
    pub key: OracleKey,
    /// The model's canonical ETA in seconds.
    pub eta_seconds: f32,
}

/// The precomputed OD-oracle artifact.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OdOracle {
    /// Artifact format version ([`ORACLE_VERSION`]).
    pub version: u32,
    /// The key scheme the entries were computed under.
    pub keyer: OdKeyer,
    /// Hex fingerprint of the model file ([`model_fingerprint`]).
    pub model_fingerprint: String,
    /// Sorted by key (binary-searchable, deterministic bytes).
    pub entries: Vec<OracleEntry>,
}

/// Payload magic of the binary oracle encoding (inside the checksummed
/// container). A payload that does not start with it is parsed as the
/// legacy JSON encoding.
const BINARY_MAGIC: [u8; 8] = *b"DPODORC2";

/// Bytes per binary record: `(origin_cell, dest_cell, week_slot): u32`
/// plus `eta_seconds: f32`, all little-endian.
const RECORD_BYTES: usize = 16;

/// A bounds-checked little-endian cursor over the binary payload; every
/// short read is a typed [`OracleError::Format`], never a slice panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take_bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], OracleError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(OracleError::Format(format!(
                "truncated while reading {what} (need {n} bytes at offset {})",
                self.pos
            )));
        };
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn read_u32(&mut self, what: &str) -> Result<u32, OracleError> {
        let b = self.take_bytes(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn read_u64(&mut self, what: &str) -> Result<u64, OracleError> {
        let b = self.take_bytes(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn read_f64(&mut self, what: &str) -> Result<f64, OracleError> {
        Ok(f64::from_bits(self.read_u64(what)?))
    }

    fn read_f32(&mut self, what: &str) -> Result<f32, OracleError> {
        Ok(f32::from_bits(self.read_u32(what)?))
    }
}

impl OdOracle {
    /// Looks up the canonical answer for a key.
    pub fn lookup(&self, key: OracleKey) -> Option<f32> {
        self.entries
            .binary_search_by(|e| e.key.cmp(&key))
            .ok()
            .and_then(|i| self.entries.get(i))
            .map(|e| e.eta_seconds)
    }

    /// Encodes the artifact as the binary payload (header + fixed-width
    /// records). Deterministic bytes: entries are already key-sorted and
    /// floats are written as their exact bit patterns.
    fn to_binary(&self) -> Vec<u8> {
        let fp = self.model_fingerprint.as_bytes();
        let mut out =
            Vec::with_capacity(8 + 4 + 56 + 4 + fp.len() + 8 + self.entries.len() * RECORD_BYTES);
        out.extend_from_slice(&BINARY_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.keyer.x0.to_bits().to_le_bytes());
        out.extend_from_slice(&self.keyer.y0.to_bits().to_le_bytes());
        out.extend_from_slice(&self.keyer.cell_meters.to_bits().to_le_bytes());
        out.extend_from_slice(&self.keyer.nx.to_le_bytes());
        out.extend_from_slice(&self.keyer.ny.to_le_bytes());
        out.extend_from_slice(&self.keyer.slots.t0.to_bits().to_le_bytes());
        out.extend_from_slice(&self.keyer.slots.dt.to_bits().to_le_bytes());
        out.extend_from_slice(&(fp.len() as u32).to_le_bytes()); // deepod-lint: allow(truncating-cast) — 16-char hex
        out.extend_from_slice(fp);
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.key.origin_cell.to_le_bytes());
            out.extend_from_slice(&e.key.dest_cell.to_le_bytes());
            out.extend_from_slice(&e.key.week_slot.to_le_bytes());
            out.extend_from_slice(&e.eta_seconds.to_bits().to_le_bytes());
        }
        out
    }

    /// Decodes the binary payload. The version field is checked before
    /// the rest of the header, so a future v3 artifact fails as
    /// [`OracleError::Version`] rather than as garbled-format noise; the
    /// slot discretization is rebuilt through [`TimeSlots::new`] so its
    /// invariants hold for hand-edited bytes too.
    fn from_binary(bytes: &[u8]) -> Result<OdOracle, OracleError> {
        let mut cur = Cursor { bytes, pos: 8 }; // past the sniffed magic
        let version = cur.read_u32("version")?;
        if version != ORACLE_VERSION {
            return Err(OracleError::Version { found: version });
        }
        let x0 = cur.read_f64("keyer.x0")?;
        let y0 = cur.read_f64("keyer.y0")?;
        let cell_meters = cur.read_f64("keyer.cell_meters")?;
        let nx = cur.read_u32("keyer.nx")?;
        let ny = cur.read_u32("keyer.ny")?;
        let t0 = cur.read_f64("slots.t0")?;
        let dt = cur.read_f64("slots.dt")?;
        let slots = TimeSlots::new(t0, dt)
            .map_err(|e| OracleError::Format(format!("invalid slot discretization: {e}")))?;
        let fp_len = cur.read_u32("fingerprint length")? as usize;
        if fp_len > 1024 {
            return Err(OracleError::Format(format!(
                "implausible fingerprint length {fp_len}"
            )));
        }
        let fp = cur.take_bytes(fp_len, "fingerprint")?;
        let model_fingerprint = String::from_utf8(fp.to_vec())
            .map_err(|_| OracleError::Format("fingerprint is not UTF-8".into()))?;
        let count = cur.read_u64("entry count")? as usize; // deepod-lint: allow(truncating-cast) — bounds-checked below
        let remaining = bytes.len().saturating_sub(cur.pos);
        if count != remaining / RECORD_BYTES || !remaining.is_multiple_of(RECORD_BYTES) {
            return Err(OracleError::Format(format!(
                "entry count {count} does not match {remaining} payload bytes"
            )));
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let what = "record";
            let key = OracleKey {
                origin_cell: cur.read_u32(what)?,
                dest_cell: cur.read_u32(what)?,
                week_slot: cur.read_u32(what)?,
            };
            let eta_seconds = cur.read_f32(what)?;
            if let Some(prev) = entries.last().map(|e: &OracleEntry| e.key) {
                if prev >= key {
                    return Err(OracleError::Format(format!(
                        "entries not strictly key-sorted at record {i}"
                    )));
                }
            }
            entries.push(OracleEntry { key, eta_seconds });
        }
        Ok(OdOracle {
            version,
            keyer: OdKeyer {
                x0,
                y0,
                cell_meters,
                nx,
                ny,
                slots,
            },
            model_fingerprint,
            entries,
        })
    }

    /// Writes the artifact in the binary encoding through [`io_guard`]
    /// (atomic temp-file rename, checksummed container).
    pub fn save(&self, path: &std::path::Path) -> Result<(), OracleError> {
        io_guard::write_checksummed(path, &self.to_binary())?;
        Ok(())
    }

    /// Writes the legacy JSON encoding (same checksummed container).
    /// Kept for interop tooling and for exercising the fallback path;
    /// new artifacts should use [`OdOracle::save`].
    pub fn save_json(&self, path: &std::path::Path) -> Result<(), OracleError> {
        let json = serde_json::to_string(self).map_err(|e| OracleError::Format(e.to_string()))?;
        io_guard::write_checksummed(path, json.as_bytes())?;
        Ok(())
    }

    /// Reads and verifies an artifact: io_guard checksum first (corrupt
    /// bytes surface as [`OracleError::Io`] with
    /// [`IoGuardError::is_corruption`] true), then encoding by payload
    /// magic — binary if it leads with `DPODORC2`, legacy JSON otherwise
    /// — then format version.
    pub fn load(path: &std::path::Path) -> Result<OdOracle, OracleError> {
        let bytes = io_guard::read_checksummed(path)?;
        if bytes.starts_with(&BINARY_MAGIC) {
            return OdOracle::from_binary(&bytes);
        }
        let json = String::from_utf8(bytes)
            .map_err(|_| OracleError::Format("artifact is not UTF-8".into()))?;
        let oracle: OdOracle =
            serde_json::from_str(&json).map_err(|e| OracleError::Format(e.to_string()))?;
        if oracle.version != ORACLE_VERSION {
            return Err(OracleError::Version {
                found: oracle.version,
            });
        }
        Ok(oracle)
    }
}

/// Knobs of the precompute pass.
#[derive(Clone, Copy, Debug)]
pub struct PrecomputeSpec {
    /// Top-K grid cells by trajectory endpoint frequency.
    pub cells: usize,
    /// Top-N weekly slots by departure frequency.
    pub slots: usize,
    /// Grid cell side length in meters.
    pub cell_meters: f64,
}

impl Default for PrecomputeSpec {
    fn default() -> Self {
        PrecomputeSpec {
            cells: 8,
            slots: 16,
            cell_meters: 500.0,
        }
    }
}

/// The hot keys of a dataset under a keyer: the top-`cells` grid cells by
/// train-trajectory endpoint frequency crossed with the top-`slots`
/// weekly slots by departure frequency. Deterministic: ties break on the
/// smaller cell/slot index.
pub fn hot_keys(keyer: &OdKeyer, ds: &CityDataset, spec: &PrecomputeSpec) -> Vec<OracleKey> {
    let mut cell_freq: HashMap<u32, u64> = HashMap::new();
    let mut slot_freq: HashMap<u32, u64> = HashMap::new();
    for order in &ds.train {
        *cell_freq
            .entry(keyer.cell_of(&order.od.origin))
            .or_insert(0) += 1;
        *cell_freq
            .entry(keyer.cell_of(&order.od.destination))
            .or_insert(0) += 1;
        if let Some((slot, _)) = keyer.slots.slot_rem_checked(order.od.depart) {
            let node = keyer.slots.week_node(slot) as u32; // deepod-lint: allow(truncating-cast) — < slots_per_week
            *slot_freq.entry(node).or_insert(0) += 1;
        }
    }
    let top_cells = top_by_freq(cell_freq, spec.cells);
    let top_slots = top_by_freq(slot_freq, spec.slots);
    let mut keys = Vec::with_capacity(top_cells.len() * top_cells.len() * top_slots.len());
    for &oc in &top_cells {
        for &dc in &top_cells {
            for &s in &top_slots {
                keys.push(OracleKey {
                    origin_cell: oc,
                    dest_cell: dc,
                    week_slot: s,
                });
            }
        }
    }
    keys
}

/// Top-`k` ids by count, descending; equal counts order by ascending id
/// so the selection is independent of `HashMap` iteration order.
fn top_by_freq(freq: HashMap<u32, u64>, k: usize) -> Vec<u32> {
    let mut pairs: Vec<(u32, u64)> = freq.into_iter().collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    pairs.truncate(k);
    pairs.into_iter().map(|(id, _)| id).collect()
}

/// Runs the precompute pass: builds the canonical request of every hot
/// key, bulk-answers them through [`DeepOdModel::estimate_batch`] (the
/// existing parallel map — bit-identical for any `threads`), and returns
/// the artifact. Keys whose canonical endpoints cannot be matched to the
/// road network are skipped, not failed.
pub fn precompute(
    model: &DeepOdModel,
    ctx: &FeatureContext,
    ds: &CityDataset,
    spec: &PrecomputeSpec,
    fingerprint: String,
    threads: usize,
) -> OdOracle {
    let keyer = OdKeyer::for_network(&ds.net, spec.cell_meters, *ctx.slots());
    let keys = hot_keys(&keyer, ds, spec);
    let reqs: Vec<PredictRequest> = keys
        .iter()
        .map(|&k| PredictRequest::Raw(keyer.canonical_od(k, ds)))
        .collect();
    let answers = model.estimate_batch(ctx, &ds.net, &reqs, threads);
    let mut entries: Vec<OracleEntry> = keys
        .into_iter()
        .zip(answers)
        .filter_map(|(key, res)| {
            res.ok().map(|resp| OracleEntry {
                key,
                eta_seconds: resp.eta_seconds,
            })
        })
        .collect();
    entries.sort_by_key(|e| e.key);
    OdOracle {
        version: ORACLE_VERSION,
        keyer,
        model_fingerprint: fingerprint,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeepOdConfig;
    use deepod_roadnet::CityProfile;
    use deepod_traj::{DatasetBuilder, DatasetConfig};

    fn fixture() -> (CityDataset, FeatureContext, DeepOdModel) {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 60));
        let cfg = DeepOdConfig {
            ds: 4,
            dt_dim: 4,
            d1m: 4,
            d2m: 4,
            d3m: 4,
            d4m: 4,
            d5m: 4,
            d6m: 4,
            d7m: 4,
            d9m: 4,
            dh: 4,
            dtraf: 4,
            ..DeepOdConfig::default()
        };
        let ctx = FeatureContext::build(&ds, cfg.slot_seconds).expect("valid slot size");
        let model = DeepOdModel::new(&cfg, &ds, &ctx).expect("valid test config");
        (ds, ctx, model)
    }

    #[test]
    fn keyer_clamps_and_round_trips_cells() {
        let (ds, ctx, _) = fixture();
        let keyer = OdKeyer::for_network(&ds.net, 500.0, *ctx.slots());
        assert!(keyer.nx >= 1 && keyer.ny >= 1);
        // Center of every cell keys back to that cell.
        for cell in [0, keyer.num_cells() / 2, keyer.num_cells() - 1] {
            assert_eq!(keyer.cell_of(&keyer.cell_center(cell)), cell);
        }
        // Far-out points clamp to border cells instead of panicking.
        let far = Point::new(-1e9, 1e9);
        assert!(keyer.cell_of(&far) < keyer.num_cells());
    }

    #[test]
    fn key_of_rejects_pre_epoch_departures() {
        let (ds, ctx, _) = fixture();
        let keyer = OdKeyer::for_network(&ds.net, 500.0, *ctx.slots());
        let mut od = ds.train[0].od;
        assert!(keyer.key_of(&od).is_some());
        od.depart = -1.0;
        assert!(
            keyer.key_of(&od).is_none(),
            "pre-epoch must not alias slot 0"
        );
        od.depart = f64::NAN;
        assert!(keyer.key_of(&od).is_none());
    }

    #[test]
    fn precompute_answers_are_bit_identical_to_fresh_estimates() {
        let (ds, ctx, model) = fixture();
        let spec = PrecomputeSpec {
            cells: 4,
            slots: 4,
            cell_meters: 500.0,
        };
        let oracle = precompute(&model, &ctx, &ds, &spec, "test".into(), 1);
        assert!(!oracle.entries.is_empty(), "hot matrix produced no entries");
        // Recompute every canonical request fresh, with a different thread
        // count, and demand bit-identity.
        let reqs: Vec<PredictRequest> = oracle
            .entries
            .iter()
            .map(|e| PredictRequest::Raw(oracle.keyer.canonical_od(e.key, &ds)))
            .collect();
        let fresh = model.estimate_batch(&ctx, &ds.net, &reqs, 4);
        for (entry, res) in oracle.entries.iter().zip(fresh) {
            let resp = res.expect("canonical request stays matchable");
            assert_eq!(
                entry.eta_seconds.to_bits(),
                resp.eta_seconds.to_bits(),
                "oracle drift at {:?}",
                entry.key
            );
        }
    }

    #[test]
    fn artifact_round_trips_and_rejects_corruption() {
        let (ds, ctx, model) = fixture();
        let spec = PrecomputeSpec {
            cells: 2,
            slots: 2,
            cell_meters: 500.0,
        };
        let oracle = precompute(&model, &ctx, &ds, &spec, "fp".into(), 1);
        let dir = std::env::temp_dir().join(format!("deepod-oracle-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("oracle.json");
        oracle.save(&path).expect("save artifact");
        let loaded = OdOracle::load(&path).expect("load artifact");
        assert_eq!(loaded.entries.len(), oracle.entries.len());
        assert_eq!(loaded.model_fingerprint, "fp");
        for e in &oracle.entries {
            assert_eq!(loaded.lookup(e.key), Some(e.eta_seconds));
        }
        assert_eq!(
            loaded.lookup(OracleKey {
                origin_cell: u32::MAX,
                dest_cell: u32::MAX,
                week_slot: u32::MAX
            }),
            None
        );
        // Flip one payload byte: the checksummed read must fail as
        // corruption, not parse garbage.
        let mut bytes = std::fs::read(&path).expect("raw artifact");
        bytes[10] ^= 0x40;
        std::fs::write(&path, &bytes).expect("corrupt artifact");
        match OdOracle::load(&path) {
            Err(OracleError::Io(e)) => assert!(e.is_corruption(), "unexpected: {e}"),
            other => panic!("corrupt artifact must fail as Io, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_artifacts_still_load_via_fallback() {
        let (ds, ctx, model) = fixture();
        let spec = PrecomputeSpec {
            cells: 2,
            slots: 2,
            cell_meters: 500.0,
        };
        let oracle = precompute(&model, &ctx, &ds, &spec, "fp".into(), 1);
        let dir = std::env::temp_dir().join(format!("deepod-oracle-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("oracle-legacy.json");
        oracle.save_json(&path).expect("save legacy artifact");
        let loaded = OdOracle::load(&path).expect("JSON fallback must keep loading");
        assert_eq!(loaded.model_fingerprint, oracle.model_fingerprint);
        assert_eq!(loaded.entries.len(), oracle.entries.len());
        for (a, b) in loaded.entries.iter().zip(&oracle.entries) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.eta_seconds.to_bits(), b.eta_seconds.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn binary_round_trip_is_bit_identical_and_smaller_than_json() {
        let (ds, ctx, model) = fixture();
        let spec = PrecomputeSpec {
            cells: 3,
            slots: 3,
            cell_meters: 500.0,
        };
        let oracle = precompute(&model, &ctx, &ds, &spec, "0123456789abcdef".into(), 1);
        assert!(!oracle.entries.is_empty());
        let bin = oracle.to_binary();
        let json = serde_json::to_string(&oracle).expect("serializable");
        assert!(
            bin.len() < json.len(),
            "binary ({}) must undercut JSON ({})",
            bin.len(),
            json.len()
        );
        let back = OdOracle::from_binary(&bin).expect("round trip");
        assert_eq!(back.model_fingerprint, oracle.model_fingerprint);
        assert_eq!(back.keyer.nx, oracle.keyer.nx);
        assert_eq!(
            back.keyer.slots.dt.to_bits(),
            oracle.keyer.slots.dt.to_bits()
        );
        assert_eq!(back.entries.len(), oracle.entries.len());
        for (a, b) in back.entries.iter().zip(&oracle.entries) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.eta_seconds.to_bits(), b.eta_seconds.to_bits());
        }
    }

    #[test]
    fn binary_decoder_rejects_bad_version_truncation_and_bad_slots() {
        let (ds, ctx, model) = fixture();
        let spec = PrecomputeSpec {
            cells: 2,
            slots: 2,
            cell_meters: 500.0,
        };
        let oracle = precompute(&model, &ctx, &ds, &spec, "fp".into(), 1);
        let bin = oracle.to_binary();

        // Unknown version fails typed, before any other header parsing.
        let mut v2 = bin.clone();
        v2[8..12].copy_from_slice(&2u32.to_le_bytes());
        match OdOracle::from_binary(&v2) {
            Err(OracleError::Version { found: 2 }) => {}
            other => panic!("v2 must fail as Version, got {other:?}"),
        }

        // Truncation anywhere fails as Format, never panics.
        for cut in [9, 20, 60, bin.len() - 3] {
            match OdOracle::from_binary(&bin[..cut]) {
                Err(OracleError::Format(_)) => {}
                other => panic!("truncation at {cut} must fail as Format, got {other:?}"),
            }
        }

        // A hand-edited dt that does not divide a week is rejected by the
        // validating TimeSlots constructor, not accepted silently.
        let mut skewed = bin.clone();
        let dt_off = 8 + 4 + 24 + 8 + 8; // magic, version, x0/y0/cell, nx/ny, t0
        skewed[dt_off..dt_off + 8].copy_from_slice(&1000.0f64.to_bits().to_le_bytes());
        match OdOracle::from_binary(&skewed) {
            Err(OracleError::Format(why)) => {
                assert!(why.contains("slot"), "unexpected reason: {why}")
            }
            other => panic!("skewed dt must fail as Format, got {other:?}"),
        }
    }

    #[test]
    fn hot_keys_are_deterministic_and_bounded() {
        let (ds, ctx, _) = fixture();
        let keyer = OdKeyer::for_network(&ds.net, 500.0, *ctx.slots());
        let spec = PrecomputeSpec {
            cells: 3,
            slots: 5,
            cell_meters: 500.0,
        };
        let a = hot_keys(&keyer, &ds, &spec);
        let b = hot_keys(&keyer, &ds, &spec);
        assert_eq!(a, b, "hot-key selection must not depend on map order");
        assert!(a.len() <= 3 * 3 * 5);
    }
}

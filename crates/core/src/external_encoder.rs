//! The External Features Encoder of §4.5: weather as a one-hot code and
//! the current traffic condition as a grid speed matrix pushed through a
//! small CNN (three Conv→BatchNorm→ReLU blocks and an average pool),
//! concatenated and encoded into `ocode` by a two-layer MLP (Eq. 18).

use deepod_nn::layers::{BatchNorm2d, Mlp2};
use deepod_nn::{Graph, ParamId, ParamStore, VarId};
use deepod_tensor::Tensor;
use deepod_traffic::NUM_WEATHER_TYPES;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// The external-feature encoder's parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExternalFeaturesEncoder {
    /// Conv kernels: 1→4, 4→8, 8→d_traf channels, 3×3 each.
    pub k1: ParamId,
    /// Second conv kernel.
    pub k2: ParamId,
    /// Third conv kernel.
    pub k3: ParamId,
    /// Per-block batch norms.
    pub bn1: BatchNorm2d,
    /// Second batch norm.
    pub bn2: BatchNorm2d,
    /// Third batch norm.
    pub bn3: BatchNorm2d,
    /// Final MLP (N_wea + d_traf → d⁵_m → d⁶_m), producing ocode.
    pub mlp: Mlp2,
    /// Traffic-feature width d_traf (conv output channels).
    pub dtraf: usize,
}

impl ExternalFeaturesEncoder {
    /// Registers all parameters; `dtraf` is the traffic-CNN output width,
    /// `d5m`/`d6m` the MLP widths of Eq. 18.
    pub fn new(
        store: &mut ParamStore,
        dtraf: usize,
        d5m: usize,
        d6m: usize,
        rng: &mut StdRng,
    ) -> Self {
        let kinit = |store: &mut ParamStore, name: &str, dims: &[usize], rng: &mut StdRng| {
            let fan_in: usize = dims[1] * dims[2] * dims[3];
            let bound = (2.0 / fan_in as f32).sqrt();
            store.register(name, Tensor::rand_uniform(dims, -bound, bound, rng))
        };
        ExternalFeaturesEncoder {
            k1: kinit(store, "ext.k1", &[4, 1, 3, 3], rng),
            k2: kinit(store, "ext.k2", &[8, 4, 3, 3], rng),
            k3: kinit(store, "ext.k3", &[dtraf, 8, 3, 3], rng),
            bn1: BatchNorm2d::new(store, "ext.bn1", 4),
            bn2: BatchNorm2d::new(store, "ext.bn2", 8),
            bn3: BatchNorm2d::new(store, "ext.bn3", dtraf),
            mlp: Mlp2::new(store, "ext.mlp", NUM_WEATHER_TYPES + dtraf, d5m, d6m, rng),
            dtraf,
        }
    }

    /// Output width of `ocode` (= d⁶_m).
    pub fn out_dim(&self) -> usize {
        self.mlp.out_dim()
    }

    /// Encodes weather one-hot + speed matrix `[1, h, w]` into `ocode`.
    pub fn encode(
        &mut self,
        g: &mut Graph,
        store: &ParamStore,
        weather_onehot: &[f32],
        speed_matrix: &Tensor,
        training: bool,
    ) -> VarId {
        assert_eq!(
            weather_onehot.len(),
            NUM_WEATHER_TYPES,
            "weather one-hot width"
        );
        assert_eq!(speed_matrix.rank(), 3, "speed matrix must be [1, h, w]");
        let x = g.input(speed_matrix.clone());

        let k1 = g.param(store, self.k1);
        let z = g.conv2d(x, k1);
        let z = self.bn1.forward(g, store, z, training);
        let z = g.relu(z);
        let k2 = g.param(store, self.k2);
        let z = g.conv2d(z, k2);
        let z = self.bn2.forward(g, store, z, training);
        let z = g.relu(z);
        let k3 = g.param(store, self.k3);
        let z = g.conv2d(z, k3);
        let z = self.bn3.forward(g, store, z, training);
        let z = g.relu(z);

        // Global average pool per channel: [d_traf, h, w] -> [d_traf].
        let (h, w) = (g.value(z).dim(1), g.value(z).dim(2));
        let zm = g.reshape(z, &[self.dtraf, h * w]);
        let zt = {
            // mean over the second axis == mean_rows of the transpose; we
            // avoid a transpose op by pooling manually through reshape:
            // mean_rows works on [rows, cols] averaging rows, so reshape to
            // [h*w, d_traf] is wrong (interleaved). Instead pool with a
            // matmul against a constant 1/(h·w) vector.
            let ones = g.input(Tensor::full(&[h * w, 1], 1.0 / (h * w) as f32));
            let pooled = g.matmul(zm, ones); // [d_traf, 1]
            g.reshape(pooled, &[self.dtraf])
        };

        let wea = g.input(Tensor::from_vec(
            weather_onehot.to_vec(),
            &[NUM_WEATHER_TYPES],
        ));
        let z8 = g.concat(&[wea, zt]);
        self.mlp.forward(g, store, z8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepod_tensor::rng_from_seed;

    fn setup() -> (ParamStore, ExternalFeaturesEncoder) {
        let mut rng = rng_from_seed(9);
        let mut store = ParamStore::new();
        let enc = ExternalFeaturesEncoder::new(&mut store, 6, 24, 10, &mut rng);
        (store, enc)
    }

    fn onehot(i: usize) -> Vec<f32> {
        let mut v = vec![0.0; NUM_WEATHER_TYPES];
        v[i] = 1.0;
        v
    }

    #[test]
    fn ocode_shape() {
        let (store, mut enc) = setup();
        let mut rng = rng_from_seed(2);
        let m = Tensor::rand_uniform(&[1, 8, 8], 0.0, 1.5, &mut rng);
        let mut g = Graph::new();
        let out = enc.encode(&mut g, &store, &onehot(0), &m, false);
        assert_eq!(g.value(out).dims(), &[10]);
        assert!(!g.value(out).has_non_finite());
    }

    #[test]
    fn weather_changes_output() {
        let (store, mut enc) = setup();
        let m = Tensor::full(&[1, 6, 6], 0.8);
        let mut g = Graph::new();
        let clear = enc.encode(&mut g, &store, &onehot(0), &m, false);
        let storm = enc.encode(&mut g, &store, &onehot(11), &m, false);
        assert_ne!(g.value(clear).as_slice(), g.value(storm).as_slice());
    }

    #[test]
    fn traffic_matrix_changes_output() {
        let (store, mut enc) = setup();
        let free = Tensor::full(&[1, 6, 6], 1.2);
        let jammed = Tensor::full(&[1, 6, 6], 0.2);
        let mut g = Graph::new();
        let a = enc.encode(&mut g, &store, &onehot(0), &free, false);
        let b = enc.encode(&mut g, &store, &onehot(0), &jammed, false);
        let (va, vb) = (g.value(a).as_slice(), g.value(b).as_slice());
        assert!(va.iter().zip(vb).any(|(x, y)| (x - y).abs() > 1e-6));
    }

    #[test]
    fn gradients_reach_all_kernels() {
        let (store, mut enc) = setup();
        let m = Tensor::full(&[1, 6, 6], 0.5);
        let mut g = Graph::new();
        let out = enc.encode(&mut g, &store, &onehot(3), &m, true);
        let s = g.sum_all(out);
        let grads = g.backward(s);
        for (name, pid) in [
            ("k1", enc.k1),
            ("k2", enc.k2),
            ("k3", enc.k3),
            ("mlp", enc.mlp.l1.w),
        ] {
            assert!(grads.get(pid).is_some(), "no grad to {name}");
        }
    }

    #[test]
    fn works_with_varied_grid_sizes() {
        let (store, mut enc) = setup();
        for (h, w) in [(4usize, 4usize), (12, 12), (5, 9)] {
            let m = Tensor::full(&[1, h, w], 0.7);
            let mut g = Graph::new();
            let out = enc.encode(&mut g, &store, &onehot(1), &m, false);
            assert_eq!(g.value(out).numel(), 10, "grid {h}x{w}");
        }
    }
}

//! The assembled DeepOD model: parameter store, embeddings with
//! graph-embedding initialization (Alg. 1 lines 1–5), the three modules
//! M_O / M_T / M_E, and the online estimation path.

use crate::ablation::EmbeddingInit;
use crate::config::DeepOdConfig;
use crate::external_encoder::ExternalFeaturesEncoder;
use crate::features::{EncodedOd, EncodedSample, FeatureContext};
use crate::interval_encoder::TimeIntervalEncoder;
use crate::od_encoder::OdEncoder;
use crate::temporal_graph::{build_temporal_graph, temporal_graph_day_only};
use crate::trajectory_encoder::TrajectoryEncoder;
use deepod_graphembed::{DeepWalk, EmbedGraph, GraphEmbedder, Line, Node2Vec, WalkConfig};
use deepod_nn::layers::{BatchNorm2d, Embedding, Mlp2};
use deepod_nn::{Gradients, Graph, ParamStore, VarId};
use deepod_roadnet::LineGraph;
use deepod_tensor::Tensor;
use deepod_traj::{CityDataset, OdInput};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Typed model-lifecycle failures. These used to be panics; deepod-lint
/// denies `unwrap`/`expect` in library code, so they surface as errors the
/// CLI maps to user-facing messages instead of backtraces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// The configuration failed [`DeepOdConfig::validate`].
    InvalidConfig(String),
    /// Model (de)serialization failed.
    Serialization(String),
    /// A guarded filesystem operation failed (missing, truncated, or
    /// corrupt artifact — see [`crate::io_guard::IoGuardError`]).
    Io(crate::io_guard::IoGuardError),
    /// A prediction request's origin or destination could not be matched
    /// to any road segment (per-request failure of [`DeepOdModel::
    /// estimate_batch`]; the rest of the batch is unaffected).
    UnmatchedEndpoints,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidConfig(why) => write!(f, "invalid config: {why}"),
            ModelError::Serialization(why) => write!(f, "model serialization failed: {why}"),
            ModelError::Io(err) => write!(f, "model io failed: {err}"),
            ModelError::UnmatchedEndpoints => write!(
                f,
                "origin or destination could not be matched to the road network"
            ),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<crate::io_guard::IoGuardError> for ModelError {
    fn from(err: crate::io_guard::IoGuardError) -> Self {
        ModelError::Io(err)
    }
}

/// One unit of inference work for [`DeepOdModel::estimate_batch`] — the
/// single public entry point to online estimation. Both the raw form (an
/// OD query that still needs road-network matching) and the pre-encoded
/// form (features already extracted, e.g. validation samples) flow through
/// the same batched path.
#[derive(Clone, Debug)]
pub enum PredictRequest {
    /// A raw OD query; matched against the road network per request, which
    /// can fail with [`ModelError::UnmatchedEndpoints`].
    Raw(OdInput),
    /// An already-encoded OD (skips feature extraction; cannot fail).
    Encoded(EncodedOd),
}

impl From<OdInput> for PredictRequest {
    fn from(od: OdInput) -> Self {
        PredictRequest::Raw(od)
    }
}

/// The answer to one [`PredictRequest`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PredictResponse {
    /// Estimated travel time in seconds (clamped non-negative).
    pub eta_seconds: f32,
}

/// The DeepOD model (all three modules plus shared embeddings).
///
/// `Clone` is shallow where it matters: the parameter store holds
/// `Arc<Tensor>` values with copy-on-write semantics, so per-worker clones
/// in the data-parallel trainer share storage until a write occurs.
#[derive(Clone, Serialize, Deserialize)]
pub struct DeepOdModel {
    /// All trainable parameters.
    pub store: ParamStore,
    /// Road-segment embedding table W_s.
    pub road_emb: Embedding,
    /// Time-slot embedding table W_t.
    pub slot_emb: Embedding,
    /// Time Interval Encoder (shared between M_T steps).
    pub interval_enc: TimeIntervalEncoder,
    /// Trajectory encoder M_T.
    pub traj_enc: TrajectoryEncoder,
    /// External-features encoder.
    pub external_enc: ExternalFeaturesEncoder,
    /// OD encoder M_O.
    pub od_enc: OdEncoder,
    /// M_E: MLP2 regressing travel time from `code` (Eq. 20).
    pub head: Mlp2,
    /// Train-only head supervising `stcode` (anti-collapse for the
    /// auxiliary binding; discarded at estimation time). Present unless
    /// the config disables stcode supervision.
    pub st_head: Mlp2,
    /// Config the model was built with.
    pub config: DeepOdConfig,
    /// Mean of the training travel times (labels are standardized so the
    /// network trains in O(1) units; predictions are de-standardized).
    pub y_mean: f32,
    /// Std-dev of the training travel times.
    pub y_std: f32,
}

/// Forward outputs for one training sample.
pub struct SampleForward {
    /// Predicted travel time node.
    pub prediction: VarId,
    /// `code` node (M_O output).
    pub code: VarId,
    /// `stcode` node (M_T output), absent for the N-st variant.
    pub stcode: Option<VarId>,
}

/// Tape nodes of one sample's training loss and its components.
pub struct SampleLossNodes {
    /// The combined loss node that gradients flow from.
    pub loss: VarId,
    /// The main MAE term `|ŷ − y|` on the standardized label.
    pub main: VarId,
    /// The scaled code-binding term `‖code − stcode‖ / √d`, absent when
    /// the variant has no trajectory branch or the sample has no steps.
    pub aux: Option<VarId>,
}

/// A sample loss decomposed for observability (values, not nodes).
#[derive(Clone, Copy, Debug)]
pub struct LossParts {
    /// The combined training loss (what the optimizer minimizes).
    pub total: f32,
    /// Main MAE component.
    pub main: f32,
    /// Auxiliary code-binding component (0 when absent).
    pub aux: f32,
}

impl DeepOdModel {
    /// Builds the model and initializes both embedding tables per the
    /// configured policy, pre-training on the road line graph and the
    /// temporal graph where applicable (Alg. 1 lines 1–5).
    pub fn new(
        cfg: &DeepOdConfig,
        ds: &CityDataset,
        ctx: &FeatureContext,
    ) -> Result<Self, ModelError> {
        cfg.validate().map_err(ModelError::InvalidConfig)?;
        let mut rng = deepod_tensor::rng_from_seed(cfg.seed);
        let mut store = ParamStore::new();

        let road_emb = Embedding::new(&mut store, "W_s", ctx.num_edges(), cfg.ds, &mut rng);
        // T-day uses a one-day slot vocabulary wrapped at day boundaries;
        // all other inits use the weekly vocabulary. We keep the weekly
        // table size in every case (lookup stays uniform) but pre-train on
        // the chosen graph.
        let slot_emb = Embedding::new(
            &mut store,
            "W_t",
            ctx.num_slot_nodes(),
            cfg.dt_dim,
            &mut rng,
        );

        if cfg.init.pretrains_road() {
            let trajs: Vec<Vec<deepod_roadnet::EdgeId>> =
                ds.train.iter().map(|o| o.trajectory.edges()).collect();
            let lg = LineGraph::from_trajectories(&ds.net, trajs.iter().map(|t| t.as_slice()), 1.0);
            let eg = line_graph_to_embed(&lg);
            let mut vectors = run_embedder(cfg.init, &eg, cfg.ds, &mut rng);
            // Seed the first two dimensions with the segment midpoint in a
            // normalized city frame. With the paper's data volume the
            // fine-tuned embeddings converge to position-aware vectors;
            // at laptop scale we inject that geometry at initialization
            // (the dimensions remain fully trainable). See DESIGN.md.
            if cfg.ds >= 2 {
                let (min, max) = ds.net.bounding_box();
                let sx = (max.x - min.x).max(1.0);
                let sy = (max.y - min.y).max(1.0);
                for i in 0..ds.net.num_edges() {
                    let mid = ds.net.edge_midpoint(deepod_roadnet::EdgeId(i as u32));
                    let row = vectors.row_mut(i);
                    row[0] = (2.0 * (mid.x - min.x) / sx - 1.0) as f32;
                    row[1] = (2.0 * (mid.y - min.y) / sy - 1.0) as f32;
                }
            }
            road_emb.load_pretrained(&mut store, vectors);
        }
        if cfg.init.pretrains_time() {
            // The context was built from the same config, so its (already
            // validated) discretization is authoritative — no fallible
            // reconstruction from `cfg.slot_seconds` needed here.
            let slots = *ctx.slots();
            let tg = if cfg.init == EmbeddingInit::TimeDayGraph {
                temporal_graph_day_only(&slots)
            } else {
                build_temporal_graph(&slots)
            };
            let vec_small = run_embedder(cfg.init, &tg, cfg.dt_dim, &mut rng);
            // T-day: tile the one-day embedding across the week.
            let vectors = if cfg.init == EmbeddingInit::TimeDayGraph {
                let per_day = slots.slots_per_day();
                let mut data = Vec::with_capacity(ctx.num_slot_nodes() * cfg.dt_dim);
                for node in 0..ctx.num_slot_nodes() {
                    data.extend_from_slice(vec_small.row(node % per_day));
                }
                Tensor::from_vec(data, &[ctx.num_slot_nodes(), cfg.dt_dim])
            } else {
                vec_small
            };
            slot_emb.load_pretrained(&mut store, vectors);
        }

        let interval_enc =
            TimeIntervalEncoder::new(&mut store, cfg.dt_dim, cfg.d1m, cfg.d2m, &mut rng);
        let traj_enc = TrajectoryEncoder::new(
            &mut store,
            cfg.ds,
            cfg.d2m,
            cfg.dh,
            cfg.d3m,
            cfg.d4m,
            cfg.variant,
            &mut rng,
        );
        let external_enc =
            ExternalFeaturesEncoder::new(&mut store, cfg.dtraf, cfg.d5m, cfg.d6m, &mut rng);
        let od_enc = OdEncoder::new(
            &mut store,
            cfg.ds,
            cfg.dt_dim,
            cfg.d6m,
            cfg.d7m,
            cfg.code_dim(),
            cfg.variant,
            cfg.init,
            &mut rng,
        );
        let head = Mlp2::new(&mut store, "me.mlp2", cfg.code_dim(), cfg.d9m, 1, &mut rng);
        let st_head = Mlp2::new(&mut store, "st.head", cfg.code_dim(), cfg.d9m, 1, &mut rng);

        // Label standardization: the head is trained on (y - mean)/std so
        // every layer works in O(1) units (raw seconds would need weight
        // magnitudes far beyond what lr = 0.01 can reach).
        let y_mean = ds.mean_train_travel_time() as f32;
        let y_var = if ds.train.is_empty() {
            1.0
        } else {
            ds.train
                .iter()
                .map(|o| {
                    let d = o.travel_time as f32 - y_mean;
                    d * d
                })
                .sum::<f32>()
                / ds.train.len() as f32
        };
        let y_std = y_var.sqrt().max(1.0);

        Ok(DeepOdModel {
            store,
            road_emb,
            slot_emb,
            interval_enc,
            traj_enc,
            external_enc,
            od_enc,
            head,
            st_head,
            config: cfg.clone(),
            y_mean,
            y_std,
        })
    }

    /// Standardizes a label into training units.
    pub fn normalize_y(&self, y: f32) -> f32 {
        (y - self.y_mean) / self.y_std
    }

    /// Converts a network output back to seconds.
    pub fn denormalize_y(&self, y: f32) -> f32 {
        y * self.y_std + self.y_mean
    }

    /// Full training forward pass for one sample: prediction, `code`, and
    /// (unless N-st) `stcode`.
    pub fn forward_sample(
        &mut self,
        g: &mut Graph,
        sample: &EncodedSample,
        training: bool,
    ) -> SampleForward {
        let code = self.od_enc.encode(
            g,
            &self.store,
            &self.road_emb,
            &self.slot_emb,
            &mut self.external_enc,
            &sample.od,
            training,
        );
        let stcode = if self.config.variant.uses_trajectory() && !sample.steps.is_empty() {
            Some(self.traj_enc.encode(
                g,
                &self.store,
                &mut self.interval_enc,
                &self.road_emb,
                &self.slot_emb,
                &sample.steps,
                sample.traj_r_start,
                sample.traj_r_end,
                training,
            ))
        } else {
            None
        };
        let prediction = self.head.forward(g, &self.store, code);
        SampleForward {
            prediction,
            code,
            stcode,
        }
    }

    /// Training loss for one sample:
    /// `w · ‖code − stcode‖ + (1 − w) · |ŷ − y|` (Alg. 1 lines 10–12).
    pub fn sample_loss(&mut self, g: &mut Graph, sample: &EncodedSample) -> VarId {
        self.sample_loss_nodes(g, sample).loss
    }

    /// Like [`Self::sample_loss`], but also exposes the component nodes so
    /// callers can *read* the M_O/M_T balance (the `w` mix the paper's
    /// §4.4 tunes) without perturbing the tape: reading a node's value is
    /// side-effect free, so the combined loss and its gradients stay
    /// bit-identical whether or not the components are observed.
    pub fn sample_loss_nodes(&mut self, g: &mut Graph, sample: &EncodedSample) -> SampleLossNodes {
        let fwd = self.forward_sample(g, sample, true);
        let y_norm = self.normalize_y(sample.travel_time);
        let target = g.input(Tensor::from_vec(vec![y_norm], &[1]));
        let main = g.mean_abs_error(fwd.prediction, target);
        let loss = match fwd.stcode {
            Some(st) => {
                // Per-dimension RMS distance: the paper's Euclidean binding
                // rescaled to O(1) so it mixes with the standardized main
                // loss the way the raw-seconds formulation mixes in the
                // paper (see DESIGN.md on label standardization).
                let aux = g.euclidean_distance(fwd.code, st);
                let aux = g.scale(aux, 1.0 / (self.config.code_dim() as f32).sqrt());
                let w = self.config.loss_weight;
                let aux_w = g.scale(aux, w);
                let main_w = g.scale(main, 1.0 - w);
                let combined = g.add(aux_w, main_w);
                let combined = if self.config.stcode_supervision {
                    // Anti-collapse term: the trivial minimizer of the
                    // auxiliary distance is a constant stcode. A dedicated
                    // train-only head supervises stcode so the trajectory
                    // representation stays informative about travel time
                    // without tearing M_E between two input distributions;
                    // the binding then pulls `code` toward something worth
                    // matching.
                    let st_pred = self.st_head.forward(g, &self.store, st);
                    let st_main = g.mean_abs_error(st_pred, target);
                    let st_w = g.scale(st_main, 1.0 - w);
                    g.add(combined, st_w)
                } else {
                    combined
                };
                return SampleLossNodes {
                    loss: combined,
                    main,
                    aux: Some(aux),
                };
            }
            None => main,
        };
        SampleLossNodes {
            loss,
            main,
            aux: None,
        }
    }

    /// Trajectory-branch-only loss: supervise st_head on stcode, ignore
    /// the OD path entirely (diagnostic / pre-training use).
    pub fn sample_loss_st_only(&mut self, g: &mut Graph, sample: &EncodedSample) -> VarId {
        let st = self.traj_enc.encode(
            g,
            &self.store,
            &mut self.interval_enc,
            &self.road_emb,
            &self.slot_emb,
            &sample.steps,
            sample.traj_r_start,
            sample.traj_r_end,
            true,
        );
        let y_norm = self.normalize_y(sample.travel_time);
        let target = g.input(Tensor::from_vec(vec![y_norm], &[1]));
        let pred = self.st_head.forward(g, &self.store, st);
        g.mean_abs_error(pred, target)
    }

    /// Gradients for one sample (builds and differentiates a fresh tape).
    pub fn sample_gradients(&mut self, sample: &EncodedSample) -> (f32, Gradients) {
        let (parts, grads) = self.sample_gradients_traced(sample);
        (parts.total, grads)
    }

    /// Like [`Self::sample_gradients`], but the loss comes back decomposed
    /// into its main (MAE) and auxiliary (code-binding) components for the
    /// observability layer. The extra values are plain node reads, so the
    /// gradients — and the total — match [`Self::sample_gradients`] bit
    /// for bit.
    pub fn sample_gradients_traced(&mut self, sample: &EncodedSample) -> (LossParts, Gradients) {
        let mut g = Graph::new();
        let nodes = self.sample_loss_nodes(&mut g, sample);
        let parts = LossParts {
            total: g.value(nodes.loss).item(),
            main: g.value(nodes.main).item(),
            aux: nodes.aux.map_or(0.0, |a| g.value(a).item()),
        };
        (parts, g.backward(nodes.loss))
    }

    /// Online estimation of one pre-encoded OD (Alg. 1, `Estimation`):
    /// only M_O and M_E run. Internal building block of the batched entry
    /// point; external callers go through [`Self::estimate_batch`].
    pub(crate) fn eval_encoded(&mut self, od: &EncodedOd) -> f32 {
        let mut g = Graph::new();
        let code = self.od_enc.encode(
            &mut g,
            &self.store,
            &self.road_emb,
            &self.slot_emb,
            &mut self.external_enc,
            od,
            false,
        );
        let y = self.head.forward(&mut g, &self.store, code);
        self.denormalize_y(g.value(y).item()).max(0.0)
    }

    /// Answers one request on a (possibly cloned) model instance.
    fn answer(
        &mut self,
        ctx: &FeatureContext,
        net: &deepod_roadnet::RoadNetwork,
        req: &PredictRequest,
    ) -> Result<PredictResponse, ModelError> {
        let eta_seconds = match req {
            PredictRequest::Raw(od) => {
                let enc = ctx
                    .encode_od(net, od)
                    .ok_or(ModelError::UnmatchedEndpoints)?;
                self.eval_encoded(&enc)
            }
            PredictRequest::Encoded(enc) => self.eval_encoded(enc),
        };
        Ok(PredictResponse { eta_seconds })
    }

    /// Batched online estimation — **the** public inference entry point.
    ///
    /// Requests are answered independently: a sample that cannot be
    /// matched to the road network yields [`ModelError::UnmatchedEndpoints`]
    /// in its slot without affecting its neighbors. With `threads > 1` the
    /// batch is split into contiguous spans via
    /// [`deepod_tensor::parallel::map_ranges`]; each span runs on a cheap
    /// copy-on-write clone of the model and the per-span outputs are
    /// re-concatenated in span order. Every sample builds its own tape, so
    /// predictions are bit-identical for any `(threads, batch size)` —
    /// the same contract the data-parallel trainer keeps (DESIGN.md §6).
    ///
    /// `threads == 0` defers to the process-wide configured default.
    pub fn estimate_batch(
        &self,
        ctx: &FeatureContext,
        net: &deepod_roadnet::RoadNetwork,
        reqs: &[PredictRequest],
        threads: usize,
    ) -> Vec<Result<PredictResponse, ModelError>> {
        if reqs.is_empty() {
            return Vec::new();
        }
        let mut t = deepod_tensor::parallel::resolve_threads(threads)
            .min(reqs.len())
            .max(1);
        if threads == 0 {
            // Default-threaded serving never fans out wider than the
            // machine; explicit thread counts are honored as requested.
            t = t.min(deepod_tensor::parallel::hardware_parallelism());
        }
        deepod_tensor::parallel::map_ranges(reqs.len(), t, |span| {
            // Clone-per-span: the parameter store is Arc-backed, so this
            // shares all weights; only batch-norm scratch state is copied.
            let mut local = self.clone();
            // `map_ranges` only hands out in-bounds spans; an empty
            // slice (rather than a panic) is the right degradation if
            // that contract ever breaks.
            reqs.get(span)
                .unwrap_or(&[])
                .iter()
                .map(|r| local.answer(ctx, net, r))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// The model's batch-norm layers in a fixed order (interval encoder,
    /// then external encoder), so per-worker running statistics can be
    /// merged deterministically.
    fn batch_norms(&self) -> [&BatchNorm2d; 5] {
        [
            &self.interval_enc.bn1,
            &self.interval_enc.bn2,
            &self.external_enc.bn1,
            &self.external_enc.bn2,
            &self.external_enc.bn3,
        ]
    }

    fn batch_norms_mut(&mut self) -> [&mut BatchNorm2d; 5] {
        [
            &mut self.interval_enc.bn1,
            &mut self.interval_enc.bn2,
            &mut self.external_enc.bn1,
            &mut self.external_enc.bn2,
            &mut self.external_enc.bn3,
        ]
    }

    /// Adopts batch-norm running statistics from data-parallel workers:
    /// the weighted average of the worker EMAs, weights being the fraction
    /// of the minibatch each worker processed (accumulated in worker
    /// order, so the result is bit-stable for a fixed worker count). With
    /// a single worker the statistics are copied verbatim, which keeps the
    /// one-thread path identical to serial training.
    pub(crate) fn merge_bn_stats(&mut self, workers: &[(f32, DeepOdModel)]) {
        if workers.is_empty() {
            return;
        }
        if let [(_, only)] = workers {
            for (dst, src) in self.batch_norms_mut().into_iter().zip(only.batch_norms()) {
                dst.running_mean.clone_from(&src.running_mean);
                dst.running_var.clone_from(&src.running_var);
            }
            return;
        }
        let mut bns = self.batch_norms_mut();
        for (b, bn) in bns.iter_mut().enumerate() {
            for c in 0..bn.channels {
                let mut mean = 0.0f32;
                let mut var = 0.0f32;
                for (w, worker) in workers {
                    let src = worker.batch_norms()[b];
                    mean += w * src.running_mean[c];
                    var += w * src.running_var[c];
                }
                bn.running_mean[c] = mean;
                bn.running_var[c] = var;
            }
        }
    }

    /// Serialized model size in bytes (Table 5's memory column).
    pub fn size_bytes(&self) -> usize {
        self.store.size_bytes()
    }

    /// Number of trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// Saves the model as JSON.
    pub fn save_json(&self) -> Result<String, ModelError> {
        serde_json::to_string(self).map_err(|e| ModelError::Serialization(e.to_string()))
    }

    /// Loads a model from JSON.
    pub fn load_json(json: &str) -> Result<Self, ModelError> {
        serde_json::from_str(json).map_err(|e| ModelError::Serialization(e.to_string()))
    }
}

fn line_graph_to_embed(lg: &LineGraph) -> EmbedGraph {
    let mut g = EmbedGraph::with_nodes(lg.num_nodes());
    for i in 0..lg.num_nodes() {
        for l in lg.neighbors(deepod_roadnet::EdgeId(i as u32)) {
            g.add_link(i, l.to.idx(), l.weight.max(1e-6));
        }
    }
    g
}

fn run_embedder(
    init: EmbeddingInit,
    graph: &EmbedGraph,
    dim: usize,
    rng: &mut rand::rngs::StdRng,
) -> Tensor {
    // Light walk settings: initialization only needs coarse structure; the
    // supervised phase fine-tunes (§4.1 "initialize or pre-train ... then
    // fine-tune").
    let cfg = WalkConfig {
        walks_per_node: 4,
        walk_length: 12,
        window: 3,
        ..Default::default()
    };
    match init {
        EmbeddingInit::DeepWalk => DeepWalk { cfg }.embed(graph, dim, rng),
        EmbeddingInit::Line => Line::default().embed(graph, dim, rng),
        // Node2Vec is both the paper default and what T-one/R-one/T-day
        // variants use for whichever table they do pre-train.
        _ => Node2Vec {
            cfg,
            p: 1.0,
            q: 0.5,
        }
        .embed(graph, dim, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ablation::Variant;
    use deepod_roadnet::CityProfile;
    use deepod_traj::{DatasetBuilder, DatasetConfig};

    fn tiny_setup() -> (CityDataset, FeatureContext, DeepOdConfig) {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 40));
        // Shrink for test speed and skip pre-training by default.
        let cfg = DeepOdConfig {
            init: EmbeddingInit::Random,
            ds: 6,
            dt_dim: 6,
            d1m: 8,
            d2m: 6,
            d3m: 8,
            d4m: 6,
            d5m: 8,
            d6m: 6,
            d7m: 8,
            d9m: 8,
            dh: 8,
            dtraf: 4,
            ..DeepOdConfig::default()
        };
        let ctx = FeatureContext::build(&ds, cfg.slot_seconds).expect("valid slot size");
        (ds, ctx, cfg)
    }

    #[test]
    fn model_builds_and_forwards() {
        let (ds, ctx, cfg) = tiny_setup();
        let mut model = DeepOdModel::new(&cfg, &ds, &ctx).expect("valid test config");
        let samples = ctx.encode_orders(&ds.net, &ds.train[..5.min(ds.train.len())]);
        assert!(!samples.is_empty());
        let mut g = Graph::new();
        let fwd = model.forward_sample(&mut g, &samples[0], false);
        assert_eq!(g.value(fwd.prediction).numel(), 1);
        assert_eq!(g.value(fwd.code).numel(), cfg.code_dim());
        let st = fwd.stcode.expect("full model produces stcode");
        assert_eq!(g.value(st).numel(), cfg.code_dim());
    }

    #[test]
    fn label_standardization_round_trip() {
        let (ds, ctx, cfg) = tiny_setup();
        let model = DeepOdModel::new(&cfg, &ds, &ctx).expect("valid test config");
        assert!(model.y_std >= 1.0);
        let y = 777.0;
        let back = model.denormalize_y(model.normalize_y(y));
        assert!((back - y).abs() < 1e-3);
        // Untrained predictions start near the mean (output layer ~ 0 in
        // normalized units).
        let mean = ds.mean_train_travel_time() as f32;
        let enc = ctx.encode_od(&ds.net, &ds.train[0].od).unwrap();
        let pred = model
            .estimate_batch(&ctx, &ds.net, &[PredictRequest::Encoded(enc)], 1)
            .remove(0)
            .expect("encoded request cannot fail")
            .eta_seconds;
        assert!(
            (pred - mean).abs() < 2.0 * model.y_std,
            "pred {pred} vs mean {mean}"
        );
    }

    #[test]
    fn loss_and_gradients_produced() {
        let (ds, ctx, cfg) = tiny_setup();
        let mut model = DeepOdModel::new(&cfg, &ds, &ctx).expect("valid test config");
        let samples = ctx.encode_orders(&ds.net, &ds.train[..3.min(ds.train.len())]);
        let (loss, grads) = model.sample_gradients(&samples[0]);
        assert!(loss.is_finite() && loss > 0.0);
        assert!(
            grads.len() > 10,
            "only {} params received grads",
            grads.len()
        );
    }

    #[test]
    fn nst_variant_has_no_stcode_and_no_traj_grads() {
        let (ds, ctx, mut cfg) = tiny_setup();
        cfg.variant = Variant::NoTrajectory;
        let mut model = DeepOdModel::new(&cfg, &ds, &ctx).expect("valid test config");
        let samples = ctx.encode_orders(&ds.net, &ds.train[..2]);
        let mut g = Graph::new();
        let fwd = model.forward_sample(&mut g, &samples[0], true);
        assert!(fwd.stcode.is_none());
        let (_, grads) = model.sample_gradients(&samples[0]);
        assert!(
            grads.get(model.traj_enc.lstm.wf).is_none(),
            "N-st must not train the LSTM"
        );
    }

    fn eta_of(
        model: &DeepOdModel,
        ctx: &FeatureContext,
        net: &deepod_roadnet::RoadNetwork,
        od: &OdInput,
    ) -> f32 {
        model
            .estimate_batch(ctx, net, &[PredictRequest::Raw(*od)], 1)
            .remove(0)
            .expect("test OD matches the network")
            .eta_seconds
    }

    #[test]
    fn estimation_is_deterministic_and_nonnegative() {
        let (ds, ctx, cfg) = tiny_setup();
        let model = DeepOdModel::new(&cfg, &ds, &ctx).expect("valid test config");
        let od = &ds.test.first().unwrap_or(&ds.train[0]).od;
        let a = eta_of(&model, &ctx, &ds.net, od);
        let b = eta_of(&model, &ctx, &ds.net, od);
        assert_eq!(a, b);
        assert!(a >= 0.0);
    }

    #[test]
    fn estimate_batch_matches_per_request_calls_for_any_thread_count() {
        let (ds, ctx, cfg) = tiny_setup();
        let model = DeepOdModel::new(&cfg, &ds, &ctx).expect("valid test config");
        let reqs: Vec<PredictRequest> = ds
            .train
            .iter()
            .take(9)
            .map(|o| PredictRequest::Raw(o.od))
            .collect();
        let serial = model.estimate_batch(&ctx, &ds.net, &reqs, 1);
        for threads in [2usize, 3, 8] {
            let parallel = model.estimate_batch(&ctx, &ds.net, &reqs, threads);
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                let (a, b) = (a.as_ref().expect("matched"), b.as_ref().expect("matched"));
                assert_eq!(
                    a.eta_seconds.to_bits(),
                    b.eta_seconds.to_bits(),
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn unmatched_endpoints_fail_per_request_not_per_batch() {
        let (ds, ctx, cfg) = tiny_setup();
        let model = DeepOdModel::new(&cfg, &ds, &ctx).expect("valid test config");
        let good = ds.train[0].od;
        let mut bad = good;
        // Far outside any road segment's 600 m matching radius.
        bad.origin = deepod_roadnet::Point::new(-1e7, -1e7);
        let out = model.estimate_batch(
            &ctx,
            &ds.net,
            &[
                PredictRequest::Raw(good),
                PredictRequest::Raw(bad),
                PredictRequest::Raw(good),
            ],
            1,
        );
        assert!(out[0].is_ok());
        assert_eq!(out[1], Err(ModelError::UnmatchedEndpoints));
        assert!(out[2].is_ok());
        assert_eq!(
            out[0].as_ref().map(|r| r.eta_seconds.to_bits()),
            out[2].as_ref().map(|r| r.eta_seconds.to_bits()),
            "a failing neighbor must not perturb other requests"
        );
    }

    #[test]
    fn node2vec_init_changes_embeddings() {
        let (ds, ctx, mut cfg) = tiny_setup();
        cfg.init = EmbeddingInit::Node2Vec;
        let model_init = DeepOdModel::new(&cfg, &ds, &ctx).expect("valid test config");
        cfg.init = EmbeddingInit::Random;
        let model_rand = DeepOdModel::new(&cfg, &ds, &ctx).expect("valid test config");
        let a = model_init.store.value(model_init.road_emb.table);
        let b = model_rand.store.value(model_rand.road_emb.table);
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let (ds, ctx, cfg) = tiny_setup();
        let model = DeepOdModel::new(&cfg, &ds, &ctx).expect("valid test config");
        let od = &ds.train[0].od;
        let before = eta_of(&model, &ctx, &ds.net, od);
        let json = model.save_json().expect("serializable model");
        let loaded = DeepOdModel::load_json(&json).unwrap();
        let after = eta_of(&loaded, &ctx, &ds.net, od);
        assert_eq!(before, after);
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let (ds, ctx, mut cfg) = tiny_setup();
        cfg.lr = 0.0;
        let err = DeepOdModel::new(&cfg, &ds, &ctx).map(|_| ()).unwrap_err();
        assert_eq!(err, ModelError::InvalidConfig("lr must be positive".into()));
        assert!(err.to_string().contains("invalid config"));
    }

    #[test]
    fn garbage_json_is_a_serialization_error() {
        let err = DeepOdModel::load_json("{not json").map(|_| ()).unwrap_err();
        assert!(matches!(err, ModelError::Serialization(_)), "got {err:?}");
    }

    #[test]
    fn model_size_scales_with_network() {
        let (ds, ctx, cfg) = tiny_setup();
        let model = DeepOdModel::new(&cfg, &ds, &ctx).expect("valid test config");
        // W_s alone: num_edges × ds floats.
        assert!(model.size_bytes() > ctx.num_edges() * cfg.ds * 4);
        assert!(model.num_parameters() > 0);
    }
}

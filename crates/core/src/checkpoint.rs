//! Durable training-state snapshots for crash-safe training.
//!
//! A [`TrainingCheckpoint`] captures *everything* the training loop in
//! [`crate::Trainer`] needs to continue as if it had never stopped: the
//! live model, the best-validation parameter snapshot, the Adam moment
//! estimates, the position inside the epoch/step structure, the validation
//! curve so far, and — crucially — the RNG stream. Restoring one and
//! calling `train` again produces **bit-identical** loss and validation
//! curves to the uninterrupted run for the same `(seed, threads)` pair;
//! the kill/resume integration suite (`crates/cli/tests/crash_resume.rs`)
//! enforces this by comparing `f32::to_bits` across a real crash.
//!
//! On disk a checkpoint is JSON wrapped in the [`crate::io_guard`]
//! checksummed container and written atomically, so a crash mid-save
//! leaves the previous checkpoint intact and any torn or bit-flipped file
//! is rejected with a typed error at load time — never parsed into a
//! silently wrong training state.
//!
//! ## What makes the resume exact
//!
//! * `rng_state` is the xoshiro256** state captured at the **start** of
//!   the epoch (before the shuffle). Resume re-runs the Fisher–Yates
//!   shuffle from that state — regenerating the epoch's sample order
//!   exactly — then skips the `batches_done` minibatches that were already
//!   applied. The stream position afterwards matches the original run's.
//! * `epoch_loss` / `epoch_batches` carry the partial epoch-loss
//!   accumulators, so `final_train_loss` is bit-identical even when the
//!   crash lands mid-epoch.
//! * The optimizer snapshot restores Adam's per-parameter first/second
//!   moments and step counters (including the lazily-updated sparse
//!   embedding rows), so update `t+1` after resume equals update `t+1`
//!   of the uninterrupted run.
//! * `threads` records the worker count the run was started with; resume
//!   refuses a different count, because gradient tree-reduction shape (and
//!   therefore floating-point rounding) depends on it.

use crate::io_guard;
use crate::model::{DeepOdModel, ModelError};
use crate::train::CurvePoint;
use deepod_nn::{AdamSnapshot, ParamStore};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// On-disk checkpoint format version; bump on incompatible changes.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Position and bookkeeping of a training run at a checkpoint boundary.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainProgress {
    /// Epoch the run is inside (the epoch to *resume*, 0-based).
    pub epoch: usize,
    /// Minibatches of that epoch already applied (0 = epoch boundary).
    pub batches_done: usize,
    /// Global optimizer steps executed.
    pub step: usize,
    /// RNG state at the start of `epoch`, *before* its shuffle. Resume
    /// reruns the shuffle from here to regenerate the sample order.
    pub rng_state: [u64; 4],
    /// Validation-MAE curve accumulated so far.
    pub curve: Vec<CurvePoint>,
    /// Best validation MAE observed so far.
    pub best_val_mae: f32,
    /// Evaluations since the best (early-stopping counter).
    pub since_best: usize,
    /// Mean training loss of the last completed epoch.
    pub final_train_loss: f32,
    /// Partial loss accumulator of the in-progress epoch.
    pub epoch_loss: f32,
    /// Minibatch count behind `epoch_loss`.
    pub epoch_batches: usize,
    /// Wall-clock seconds consumed before this checkpoint (so resumed
    /// curve timestamps continue rather than restart; informational only —
    /// determinism assertions exclude wall time).
    pub elapsed_s: f64,
    /// Resolved worker-thread count of the run. Gradient merge order — and
    /// therefore floating-point rounding — depends on it, so resume
    /// requires the same count.
    pub threads: usize,
}

/// A complete, durable snapshot of an in-flight training run.
#[derive(Clone, Serialize, Deserialize)]
pub struct TrainingCheckpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The live model (parameters, embeddings, config, label stats).
    pub model: DeepOdModel,
    /// Parameter snapshot of the best validation point so far (what
    /// model selection restores at the end of training).
    pub best_store: ParamStore,
    /// Adam moments and step counters.
    pub optimizer: AdamSnapshot,
    /// Loop position and bookkeeping.
    pub progress: TrainProgress,
}

// Manual Debug: the model holds megabytes of weights; printing the loop
// position and sizes is what error messages actually need.
impl std::fmt::Debug for TrainingCheckpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainingCheckpoint")
            .field("version", &self.version)
            .field("progress", &self.progress)
            .field("params", &self.model.store.len())
            .field("optimizer_states", &self.optimizer.states.len())
            .finish()
    }
}

/// Eagerly materializes the checkpoint counters so "no save happened" is
/// an observed zero rather than a missing key. Called once per process
/// from `RuntimeConfig::apply`.
pub fn register_metrics() {
    crate::obs::registry::counter_add("checkpoint.saves", 0);
    crate::obs::registry::counter_add("checkpoint.loads", 0);
}

impl TrainingCheckpoint {
    /// Serializes and writes the checkpoint atomically with a checksum
    /// footer. A crash at any point leaves either the previous checkpoint
    /// or the new one on disk — never a torn file.
    pub fn save(&self, path: &Path) -> Result<(), ModelError> {
        let span = crate::obs::TimingSpan::start("checkpoint", "checkpoint.save_ms");
        let json =
            serde_json::to_string(self).map_err(|e| ModelError::Serialization(e.to_string()))?;
        io_guard::write_checksummed(path, json.as_bytes())?;
        crate::obs::registry::counter_inc("checkpoint.saves");
        crate::obs::debug(
            "checkpoint",
            "checkpoint saved",
            &[
                ("path", path.display().to_string().into()),
                ("step", self.progress.step.into()),
                ("epoch", self.progress.epoch.into()),
                ("ms", span.elapsed_ms().into()),
            ],
        );
        Ok(())
    }

    /// Reads a checkpoint back, verifying the checksum footer and the
    /// format version. Corruption (truncation, bit flips, wrong magic)
    /// surfaces as [`ModelError::Io`]; a parseable file of the wrong
    /// version as [`ModelError::Serialization`].
    pub fn load(path: &Path) -> Result<Self, ModelError> {
        let _span = crate::obs::TimingSpan::start("checkpoint", "checkpoint.load_ms");
        crate::obs::registry::counter_inc("checkpoint.loads");
        let bytes = io_guard::read_checksummed(path)?;
        let json = std::str::from_utf8(&bytes)
            .map_err(|e| ModelError::Serialization(format!("checkpoint is not UTF-8 JSON: {e}")))?;
        let ckpt: TrainingCheckpoint =
            serde_json::from_str(json).map_err(|e| ModelError::Serialization(e.to_string()))?;
        if ckpt.version != CHECKPOINT_VERSION {
            return Err(ModelError::Serialization(format!(
                "checkpoint version {} unsupported (expected {CHECKPOINT_VERSION})",
                ckpt.version
            )));
        }
        Ok(ckpt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeepOdConfig;
    use crate::features::FeatureContext;
    use deepod_roadnet::CityProfile;
    use deepod_traj::{CityDataset, DatasetBuilder, DatasetConfig};
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_ckpt(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join("deepod_checkpoint_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(format!(
            "{tag}_{}_{}.ckpt",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn tiny_model() -> DeepOdModel {
        fn build() -> (CityDataset, DeepOdModel) {
            let ds =
                DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 30));
            let cfg = DeepOdConfig {
                init: crate::ablation::EmbeddingInit::Random,
                ds: 4,
                dt_dim: 4,
                d1m: 4,
                d2m: 4,
                d3m: 4,
                d4m: 4,
                d5m: 4,
                d6m: 4,
                d7m: 4,
                d9m: 4,
                dh: 4,
                dtraf: 4,
                ..DeepOdConfig::default()
            };
            let ctx = FeatureContext::build(&ds, cfg.slot_seconds).expect("valid slot size");
            let model = DeepOdModel::new(&cfg, &ds, &ctx).expect("tiny config is valid");
            (ds, model)
        }
        static MODEL: std::sync::OnceLock<DeepOdModel> = std::sync::OnceLock::new();
        MODEL.get_or_init(|| build().1).clone()
    }

    fn checkpoint_with(progress: TrainProgress, optimizer: AdamSnapshot) -> TrainingCheckpoint {
        let model = tiny_model();
        TrainingCheckpoint {
            version: CHECKPOINT_VERSION,
            best_store: model.store.clone(),
            model,
            optimizer,
            progress,
        }
    }

    fn empty_snapshot() -> AdamSnapshot {
        deepod_nn::AdamOptimizer::new(0.01).snapshot()
    }

    fn default_progress() -> TrainProgress {
        TrainProgress {
            epoch: 1,
            batches_done: 3,
            step: 17,
            rng_state: [1, 2, 3, 4],
            curve: vec![CurvePoint {
                step: 0,
                val_mae: 123.5,
                elapsed_s: 0.0,
            }],
            best_val_mae: 123.5,
            since_best: 1,
            final_train_loss: 0.75,
            epoch_loss: 1.5,
            epoch_batches: 3,
            elapsed_s: 2.25,
            threads: 2,
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let ckpt = checkpoint_with(default_progress(), empty_snapshot());
        let p = temp_ckpt("round_trip");
        ckpt.save(&p).expect("save");
        let back = TrainingCheckpoint::load(&p).expect("load");
        assert_eq!(back.version, CHECKPOINT_VERSION);
        assert_eq!(back.progress.rng_state, ckpt.progress.rng_state);
        assert_eq!(back.progress.step, ckpt.progress.step);
        assert_eq!(
            back.progress.best_val_mae.to_bits(),
            ckpt.progress.best_val_mae.to_bits()
        );
        // Model parameters must survive bit-for-bit.
        assert_eq!(ckpt.model.store.len(), back.model.store.len());
        for id in ckpt.model.store.ids().collect::<Vec<_>>() {
            let a = ckpt.model.store.value(id);
            let b = back.model.store.value(id);
            assert_eq!(
                a.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn wrong_version_rejected() {
        let mut ckpt = checkpoint_with(default_progress(), empty_snapshot());
        ckpt.version = CHECKPOINT_VERSION + 9;
        let p = temp_ckpt("version");
        ckpt.save(&p).expect("save");
        let err = TrainingCheckpoint::load(&p).expect_err("version mismatch");
        assert!(matches!(err, ModelError::Serialization(_)), "got {err:?}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err =
            TrainingCheckpoint::load(Path::new("/nonexistent/run.ckpt")).expect_err("missing file");
        match err {
            ModelError::Io(io) => assert!(!io.is_corruption()),
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    // Strategy for finite f32 values (JSON cannot represent NaN/Inf, and
    // training state never legitimately contains them).
    fn finite_f32() -> impl Strategy<Value = f32> {
        any::<i32>().prop_map(|bits| {
            let v = f32::from_bits(bits as u32);
            if v.is_finite() {
                v
            } else {
                (bits % 1_000_003) as f32 / 7.0
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Arbitrary (finite) progress + optimizer scalar state survives a
        /// save → load cycle bit-exactly.
        #[test]
        fn arbitrary_state_round_trips(
            rng_parts in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
            step in any::<u32>(),
            best in finite_f32(),
            epoch_loss in finite_f32(),
            lr in finite_f32(),
            curve_vals in proptest::collection::vec(finite_f32(), 0..8),
        ) {
            let rng_state = [rng_parts.0, rng_parts.1, rng_parts.2, rng_parts.3];
            let mut progress = default_progress();
            progress.rng_state = rng_state;
            progress.step = step as usize;
            progress.best_val_mae = best;
            progress.epoch_loss = epoch_loss;
            progress.curve = curve_vals
                .iter()
                .enumerate()
                .map(|(i, &v)| CurvePoint { step: i, val_mae: v, elapsed_s: 0.0 })
                .collect();
            let optimizer = AdamSnapshot { lr, ..empty_snapshot() };
            let ckpt = checkpoint_with(progress, optimizer);
            let p = temp_ckpt("prop_rt");
            ckpt.save(&p).expect("save");
            let back = TrainingCheckpoint::load(&p).expect("load");
            std::fs::remove_file(&p).ok();
            prop_assert_eq!(back.progress.rng_state, rng_state);
            prop_assert_eq!(back.progress.step, step as usize);
            prop_assert_eq!(back.progress.best_val_mae.to_bits(), best.to_bits());
            prop_assert_eq!(back.progress.epoch_loss.to_bits(), epoch_loss.to_bits());
            prop_assert_eq!(back.optimizer.lr.to_bits(), lr.to_bits());
            prop_assert_eq!(back.progress.curve.len(), curve_vals.len());
            for (pt, v) in back.progress.curve.iter().zip(&curve_vals) {
                prop_assert_eq!(pt.val_mae.to_bits(), v.to_bits());
            }
        }

        /// Any single-byte truncation of a checkpoint file is rejected
        /// with a typed corruption error — never a panic, never a
        /// successfully-loaded wrong state.
        #[test]
        fn any_truncation_rejected(cut_frac in 0.0f64..1.0) {
            let ckpt = checkpoint_with(default_progress(), empty_snapshot());
            let p = temp_ckpt("prop_trunc");
            ckpt.save(&p).expect("save");
            let full = std::fs::read(&p).expect("read");
            let cut = ((full.len() as f64 * cut_frac) as usize).min(full.len() - 1);
            std::fs::write(&p, &full[..cut]).expect("truncate");
            let err = TrainingCheckpoint::load(&p).expect_err("truncated");
            std::fs::remove_file(&p).ok();
            match err {
                ModelError::Io(io) => prop_assert!(io.is_corruption(), "{io}"),
                other => prop_assert!(false, "expected Io corruption, got {other:?}"),
            }
        }

        /// Any single-bit flip anywhere in the file is rejected with a
        /// typed corruption error.
        #[test]
        fn any_bit_flip_rejected(pos_frac in 0.0f64..1.0, bit in 0u8..8) {
            let ckpt = checkpoint_with(default_progress(), empty_snapshot());
            let p = temp_ckpt("prop_flip");
            ckpt.save(&p).expect("save");
            let mut bytes = std::fs::read(&p).expect("read");
            let pos = ((bytes.len() as f64 * pos_frac) as usize).min(bytes.len() - 1);
            bytes[pos] ^= 1 << bit;
            std::fs::write(&p, &bytes).expect("corrupt");
            let err = TrainingCheckpoint::load(&p).expect_err("bit flip");
            std::fs::remove_file(&p).ok();
            match err {
                ModelError::Io(io) => prop_assert!(io.is_corruption(), "{io}"),
                other => prop_assert!(false, "expected Io corruption, got {other:?}"),
            }
        }
    }
}

//! The Time Interval Encoder of §4.3 (Fig. 6): a time interval
//! `[t[1], t[-1]]` covering Δd slots is embedded slot-by-slot, stacked into
//! a `Δd × d_t` matrix, passed through a ResNet block whose residual branch
//! is three convolutions (3×1 ×4 channels → 3×1 ×8 → 1×1 ×1, each with
//! BatchNorm+ReLU except the last), average-pooled over Δd (Eq. 10), then
//! concatenated with the two normalized remainders and encoded by a
//! two-layer MLP into `tcode` (Eq. 11).

use deepod_nn::layers::{BatchNorm2d, Embedding, Mlp2};
use deepod_nn::{Graph, ParamId, ParamStore, VarId};
use deepod_tensor::Tensor;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// The interval encoder's parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimeIntervalEncoder {
    /// Conv kernel K¹ `[4, 1, 3, 1]`.
    pub k1: ParamId,
    /// Conv kernel K² `[8, 4, 3, 1]`.
    pub k2: ParamId,
    /// Conv kernel K³ `[1, 8, 1, 1]`.
    pub k3: ParamId,
    /// BatchNorm after conv 1.
    pub bn1: BatchNorm2d,
    /// BatchNorm after conv 2.
    pub bn2: BatchNorm2d,
    /// The final two-layer MLP (d_t + 2 → d¹_m → d²_m).
    pub mlp: Mlp2,
    /// Slot embedding width d_t.
    pub dt_dim: usize,
}

impl TimeIntervalEncoder {
    /// Registers all parameters. `dt_dim` is the slot-embedding width,
    /// `d1m`/`d2m` the MLP widths of Eq. 11.
    pub fn new(
        store: &mut ParamStore,
        dt_dim: usize,
        d1m: usize,
        d2m: usize,
        rng: &mut StdRng,
    ) -> Self {
        // Kaiming-ish kernel init scaled by fan-in.
        let kinit = |store: &mut ParamStore, name: &str, dims: &[usize], rng: &mut StdRng| {
            let fan_in: usize = dims[1] * dims[2] * dims[3];
            let bound = (2.0 / fan_in as f32).sqrt();
            store.register(name, Tensor::rand_uniform(dims, -bound, bound, rng))
        };
        TimeIntervalEncoder {
            k1: kinit(store, "tie.k1", &[4, 1, 3, 1], rng),
            k2: kinit(store, "tie.k2", &[8, 4, 3, 1], rng),
            k3: kinit(store, "tie.k3", &[1, 8, 1, 1], rng),
            bn1: BatchNorm2d::new(store, "tie.bn1", 4),
            bn2: BatchNorm2d::new(store, "tie.bn2", 8),
            // + 3: the two remainders of Eq. 11 plus ln(1+Δd). The paper's
            // Z⁶ has only the remainders, but its average pooling (Eq. 10)
            // discards the slot count Δd computed in Eq. 4, leaving the
            // encoder blind to interval length; reinjecting Δd restores the
            // quantity Eq. 4 derives. Documented in DESIGN.md.
            mlp: Mlp2::new(store, "tie.mlp", dt_dim + 3, d1m, d2m, rng),
            dt_dim,
        }
    }

    /// Output width of `tcode` (= d²_m).
    pub fn out_dim(&self) -> usize {
        self.mlp.out_dim()
    }

    /// Encodes one interval: `slot_nodes` are the Δd weekly slot indices,
    /// `rem_enter`/`rem_exit` the normalized remainders. `slot_emb` is the
    /// shared time-slot embedding table W_t.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's module signature
    pub fn encode(
        &mut self,
        g: &mut Graph,
        store: &ParamStore,
        slot_emb: &Embedding,
        slot_nodes: &[usize],
        rem_enter: f32,
        rem_exit: f32,
        training: bool,
    ) -> VarId {
        assert!(!slot_nodes.is_empty(), "interval covers no slots");
        // Dt: [Δd, d_t] stacked slot embeddings, viewed as [1, Δd, d_t].
        let dt_matrix = slot_emb.lookup_many(g, store, slot_nodes);
        let dd = slot_nodes.len();
        let x = g.reshape(dt_matrix, &[1, dd, self.dt_dim]);

        // Residual branch: conv(3×1,4) → BN → ReLU → conv(3×1,8) → BN →
        // ReLU → conv(1×1,1)  (Eq. 5–7).
        let k1 = g.param(store, self.k1);
        let z1 = g.conv2d(x, k1);
        let z1 = self.bn1.forward(g, store, z1, training);
        let z1 = g.relu(z1);
        let k2 = g.param(store, self.k2);
        let z2 = g.conv2d(z1, k2);
        let z2 = self.bn2.forward(g, store, z2, training);
        let z2 = g.relu(z2);
        let k3 = g.param(store, self.k3);
        let z3 = g.conv2d(z2, k3);

        // Z⁴ = Dt ⊕ Z³ (Eq. 8): the identity shortcut.
        let z4 = g.add(x, z3);

        // Average pooling over Δd (Eq. 10).
        let z4m = g.reshape(z4, &[dd, self.dt_dim]);
        let z5 = g.mean_rows(z4m);

        // Z⁶ = concat(Z⁵, t_r[1], t_r[-1], ln(1+Δd)) → MLP (Eq. 11 plus the
        // Δd scalar of Eq. 4; see the constructor comment).
        let dd_feat = (1.0 + dd as f32).ln();
        let rems = g.input(Tensor::from_vec(vec![rem_enter, rem_exit, dd_feat], &[3]));
        let z6 = g.concat(&[z5, rems]);
        self.mlp.forward(g, store, z6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepod_tensor::rng_from_seed;

    fn setup(dt_dim: usize) -> (ParamStore, TimeIntervalEncoder, Embedding) {
        let mut rng = rng_from_seed(1);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "slots", 50, dt_dim, &mut rng);
        let enc = TimeIntervalEncoder::new(&mut store, dt_dim, 24, 12, &mut rng);
        (store, enc, emb)
    }

    #[test]
    fn output_width_fixed_across_interval_lengths() {
        let (store, mut enc, emb) = setup(8);
        for nodes in [vec![3], vec![3, 4], vec![3, 4, 5, 6, 7, 8, 9]] {
            let mut g = Graph::new();
            let out = enc.encode(&mut g, &store, &emb, &nodes, 0.2, 0.8, false);
            assert_eq!(g.value(out).dims(), &[12], "Δd = {}", nodes.len());
            assert!(!g.value(out).has_non_finite());
        }
    }

    #[test]
    fn deterministic_in_eval_mode() {
        let (store, mut enc, emb) = setup(8);
        let mut g1 = Graph::new();
        let a = enc.encode(&mut g1, &store, &emb, &[1, 2, 3], 0.1, 0.9, false);
        let mut g2 = Graph::new();
        let b = enc.encode(&mut g2, &store, &emb, &[1, 2, 3], 0.1, 0.9, false);
        assert_eq!(g1.value(a).as_slice(), g2.value(b).as_slice());
    }

    #[test]
    fn different_slots_different_codes() {
        let (store, mut enc, emb) = setup(8);
        let mut g = Graph::new();
        let a = enc.encode(&mut g, &store, &emb, &[1, 2], 0.0, 0.5, false);
        let b = enc.encode(&mut g, &store, &emb, &[30, 31], 0.0, 0.5, false);
        let da = g.value(a).as_slice();
        let db = g.value(b).as_slice();
        assert!(da.iter().zip(db).any(|(x, y)| (x - y).abs() > 1e-6));
    }

    #[test]
    fn remainders_affect_output() {
        let (store, mut enc, emb) = setup(8);
        let mut g = Graph::new();
        let a = enc.encode(&mut g, &store, &emb, &[5], 0.0, 0.1, false);
        let b = enc.encode(&mut g, &store, &emb, &[5], 0.9, 1.0, false);
        assert_ne!(g.value(a).as_slice(), g.value(b).as_slice());
    }

    #[test]
    fn gradients_flow_to_all_parts() {
        let (mut store, mut enc, emb) = setup(8);
        let mut g = Graph::new();
        let out = enc.encode(&mut g, &store, &emb, &[2, 3, 4], 0.3, 0.7, true);
        let s = g.sum_all(out);
        let grads = g.backward(s);
        // Embedding rows, all three kernels, BN affine and MLP must all
        // receive gradient.
        assert!(grads.get(emb.table).is_some(), "no grad to slot embedding");
        assert!(grads.get(enc.k1).is_some());
        assert!(grads.get(enc.k2).is_some());
        assert!(grads.get(enc.k3).is_some());
        assert!(grads.get(enc.bn1.gamma).is_some());
        assert!(grads.get(enc.mlp.l1.w).is_some());
        // And an optimizer step must change the output.
        let before = g.value(out).as_slice().to_vec();
        let mut opt = deepod_nn::AdamOptimizer::new(0.05);
        opt.step(&mut store, &grads);
        let mut g2 = Graph::new();
        let out2 = enc.encode(&mut g2, &store, &emb, &[2, 3, 4], 0.3, 0.7, false);
        assert_ne!(before, g2.value(out2).as_slice());
    }

    #[test]
    #[should_panic(expected = "no slots")]
    fn empty_interval_panics() {
        let (store, mut enc, emb) = setup(8);
        let mut g = Graph::new();
        let _ = enc.encode(&mut g, &store, &emb, &[], 0.0, 0.0, false);
    }
}

//! Crash-safe file IO for every artifact the stack persists: models,
//! checkpoints, datasets, reports.
//!
//! A bare `fs::write` can be interrupted mid-buffer, leaving a truncated
//! file that parses as garbage (or worse, parses *successfully* as a wrong
//! model). Everything here goes through the classic write-temp → fsync →
//! atomic-rename dance instead, so a reader only ever observes either the
//! old complete file or the new complete file:
//!
//! 1. the payload is written to `<path>.tmp` in the destination directory
//!    (same filesystem, so the rename is atomic),
//! 2. the temp file is fsynced (data reaches the disk before the name),
//! 3. `rename(temp, path)` publishes it atomically,
//! 4. the parent directory is fsynced (the rename itself is durable).
//!
//! Artifacts that must also *detect* corruption (checkpoints) use the
//! checksummed container: `payload ‖ footer`, where the 24-byte footer is
//! `[magic "DPODSUM1"][payload_len u64 LE][fnv1a64(payload) u64 LE]`.
//! Reading verifies magic, length, and checksum, and reports a typed
//! [`IoGuardError`] — never a panic and never silently wrong bytes.
//!
//! Transient OS errors (`Interrupted`, `WouldBlock`, `TimedOut`) are
//! retried a bounded number of times with a deterministic backoff
//! schedule; everything else surfaces immediately.
//!
//! The `deepod-lint` rule `no-bare-fs-write` forbids `fs::write` /
//! `File::create` everywhere outside this module, so adopting the guard is
//! enforced mechanically, not by convention.

use std::fmt;
use std::fs::File;
use std::io::{ErrorKind, Read as _, Write as _};
use std::path::Path;

/// Magic bytes identifying the checksummed container footer (and its
/// version: bump the trailing digit on format changes).
pub const FOOTER_MAGIC: [u8; 8] = *b"DPODSUM1";

/// Size of the checksummed container footer in bytes.
pub const FOOTER_LEN: u64 = 24;

/// Transient-error retry schedule: attempt count and per-attempt backoff.
/// The delays are fixed constants, so retry behavior is deterministic.
const RETRY_BACKOFF_MS: [u64; 3] = [1, 4, 16];

/// Typed failures of the guarded IO layer. Everything carries the path so
/// callers can surface actionable messages without re-wrapping in strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IoGuardError {
    /// An OS-level IO failure (after bounded retries for transient kinds).
    Io {
        /// File the operation targeted.
        path: String,
        /// What was being attempted (`"write"`, `"rename"`, ...).
        op: &'static str,
        /// The OS error, stringified.
        why: String,
    },
    /// The file is shorter than its footer claims (or than the footer
    /// itself) — the classic truncated-write signature.
    Truncated {
        /// Offending file.
        path: String,
        /// Actual file length in bytes.
        len: u64,
        /// Minimum length implied by the footer.
        need: u64,
    },
    /// The footer's magic bytes are absent: not a checksummed artifact, or
    /// the tail of the file was destroyed.
    BadMagic {
        /// Offending file.
        path: String,
    },
    /// The payload hash does not match the recorded checksum — the file
    /// was bit-flipped or partially overwritten.
    ChecksumMismatch {
        /// Offending file.
        path: String,
        /// Checksum recorded in the footer.
        expected: u64,
        /// Checksum of the bytes actually read.
        found: u64,
    },
}

impl IoGuardError {
    /// The path the failing operation targeted.
    pub fn path(&self) -> &str {
        match self {
            IoGuardError::Io { path, .. }
            | IoGuardError::Truncated { path, .. }
            | IoGuardError::BadMagic { path }
            | IoGuardError::ChecksumMismatch { path, .. } => path,
        }
    }

    /// Whether the error indicates a corrupt (rather than missing or
    /// OS-inaccessible) artifact.
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            IoGuardError::Truncated { .. }
                | IoGuardError::BadMagic { .. }
                | IoGuardError::ChecksumMismatch { .. }
        )
    }
}

impl fmt::Display for IoGuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoGuardError::Io { path, op, why } => write!(f, "{op} {path}: {why}"),
            IoGuardError::Truncated { path, len, need } => write!(
                f,
                "{path}: truncated artifact ({len} bytes, footer implies >= {need})"
            ),
            IoGuardError::BadMagic { path } => {
                write!(
                    f,
                    "{path}: missing checksum footer (not a guarded artifact)"
                )
            }
            IoGuardError::ChecksumMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "{path}: checksum mismatch (footer {expected:#018x}, payload {found:#018x}) — \
                 the file is corrupt"
            ),
        }
    }
}

impl std::error::Error for IoGuardError {}

/// FNV-1a 64-bit hash — dependency-free, byte-order independent, and fast
/// enough to checksum multi-megabyte checkpoints without registering on a
/// training profile.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn io_err(path: &Path, op: &'static str, e: &std::io::Error) -> IoGuardError {
    IoGuardError::Io {
        path: path.display().to_string(),
        op,
        why: e.to_string(),
    }
}

/// Registers the metric keys this module always reports, at zero, so "no
/// retries happened" is an observation rather than a missing key and
/// snapshot key sets stay identical across runs. Called once per process
/// from `RuntimeConfig::apply`.
pub fn register_metrics() {
    crate::obs::registry::counter_add("io_guard.writes", 0);
    crate::obs::registry::counter_add("io_guard.reads", 0);
    crate::obs::registry::counter_add("io_guard.retries", 0);
    crate::obs::registry::register_histogram("io_guard.write_bytes");
}

/// Runs an IO closure with bounded retries on transient error kinds and a
/// deterministic backoff schedule.
fn with_retry<T>(
    path: &Path,
    op: &'static str,
    mut attempt: impl FnMut() -> std::io::Result<T>,
) -> Result<T, IoGuardError> {
    // Only nonzero counts are added here; the key itself is materialized
    // eagerly by [`register_metrics`], so a clean run still reports
    // `io_guard.retries = 0` without this path faking an observation.
    let mut retries: u64 = 0;
    let report = |n: u64| {
        if n > 0 {
            crate::obs::registry::counter_add("io_guard.retries", n);
        }
    };
    let mut last: Option<std::io::Error> = None;
    for (tries, backoff_ms) in RETRY_BACKOFF_MS.iter().enumerate() {
        match attempt() {
            Ok(v) => {
                report(retries);
                return Ok(v);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut
                ) =>
            {
                retries += 1;
                crate::obs::debug(
                    "io_guard",
                    "transient error, retrying",
                    &[
                        ("op", op.into()),
                        ("path", path.display().to_string().into()),
                        ("attempt", (tries + 1).into()),
                        ("why", e.to_string().into()),
                    ],
                );
                if tries + 1 < RETRY_BACKOFF_MS.len() {
                    std::thread::sleep(std::time::Duration::from_millis(*backoff_ms));
                }
                last = Some(e);
            }
            Err(e) => {
                report(retries);
                return Err(io_err(path, op, &e));
            }
        }
    }
    report(retries);
    let e = last.unwrap_or_else(|| std::io::Error::other("retry loop exhausted"));
    Err(io_err(path, op, &e))
}

/// Atomically replaces `path` with `bytes`: write temp → fsync → rename →
/// fsync dir. On any failure (or a crash at any point) the previous
/// content of `path` is still intact.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), IoGuardError> {
    deepod_tensor::failpoint::hit("io_guard::pre_write");
    crate::obs::registry::counter_inc("io_guard.writes");
    crate::obs::registry::observe("io_guard.write_bytes", bytes.len() as f64);
    let tmp = tmp_path(path);
    {
        // Covers create + write + fsync: the durability-critical stretch.
        let _fsync = crate::obs::TimingSpan::start("io_guard", "io_guard.fsync_ms");
        with_retry(&tmp, "write temp file for", || {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()
        })?;
    }
    // A crash here must leave the *target* untouched: only the `.tmp`
    // orphan may remain. The kill/resume suite arms this site to prove it.
    deepod_tensor::failpoint::hit("io_guard::pre_rename");
    with_retry(path, "rename into", || std::fs::rename(&tmp, path))?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        // Directory fsync makes the rename itself durable. Platforms that
        // refuse to open directories (or to fsync them) don't get to block
        // the write — the data itself is already synced.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// String-payload convenience over [`atomic_write`].
pub fn atomic_write_str(path: &Path, text: &str) -> Result<(), IoGuardError> {
    atomic_write(path, text.as_bytes())
}

/// Writes `payload ‖ footer` atomically, where the footer records the
/// payload length and FNV-1a checksum. Pair with [`read_checksummed`].
pub fn write_checksummed(path: &Path, payload: &[u8]) -> Result<(), IoGuardError> {
    let mut buf = Vec::with_capacity(payload.len() + FOOTER_LEN as usize);
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&FOOTER_MAGIC);
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    atomic_write(path, &buf)
}

/// Reads a [`write_checksummed`] artifact, verifying footer magic, length,
/// and checksum. Returns the payload bytes; any inconsistency is a typed
/// error, never a panic and never silently wrong bytes.
pub fn read_checksummed(path: &Path) -> Result<Vec<u8>, IoGuardError> {
    crate::obs::registry::counter_inc("io_guard.reads");
    let mut bytes = Vec::new();
    with_retry(path, "read", || {
        bytes.clear();
        File::open(path)?.read_to_end(&mut bytes).map(|_| ())
    })?;
    let disp = || path.display().to_string();
    let len = bytes.len() as u64;
    if len < FOOTER_LEN {
        return Err(IoGuardError::Truncated {
            path: disp(),
            len,
            need: FOOTER_LEN,
        });
    }
    let payload_end = (len - FOOTER_LEN) as usize;
    let footer = &bytes[payload_end..];
    if footer[..8] != FOOTER_MAGIC {
        return Err(IoGuardError::BadMagic { path: disp() });
    }
    let u64_at = |off: usize| {
        let mut b = [0u8; 8];
        b.copy_from_slice(&footer[off..off + 8]);
        u64::from_le_bytes(b)
    };
    let recorded_len = u64_at(8);
    let recorded_sum = u64_at(16);
    if recorded_len != payload_end as u64 {
        return Err(IoGuardError::Truncated {
            path: disp(),
            len,
            need: recorded_len + FOOTER_LEN,
        });
    }
    let found = fnv1a64(&bytes[..payload_end]);
    if found != recorded_sum {
        return Err(IoGuardError::ChecksumMismatch {
            path: disp(),
            expected: recorded_sum,
            found,
        });
    }
    bytes.truncate(payload_end);
    Ok(bytes)
}

/// The temp-file name used by [`atomic_write`]: `<file>.tmp` next to the
/// destination (same directory ⇒ same filesystem ⇒ atomic rename).
fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("deepod_io_guard_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(format!("{tag}_{}.bin", std::process::id()))
    }

    #[test]
    fn atomic_write_round_trips_and_replaces() {
        let p = temp_file("atomic");
        atomic_write(&p, b"first version").expect("write");
        assert_eq!(std::fs::read(&p).expect("read"), b"first version");
        atomic_write(&p, b"second").expect("overwrite");
        assert_eq!(std::fs::read(&p).expect("read"), b"second");
        assert!(!tmp_path(&p).exists(), "temp file must not linger");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn checksummed_round_trip() {
        let p = temp_file("sum_ok");
        let payload = b"{\"model\": [1, 2, 3]}".to_vec();
        write_checksummed(&p, &payload).expect("write");
        assert_eq!(read_checksummed(&p).expect("read"), payload);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn truncation_detected_at_every_cut() {
        let p = temp_file("sum_trunc");
        write_checksummed(&p, b"payload bytes here").expect("write");
        let full = std::fs::read(&p).expect("read");
        for cut in [0, 1, full.len() / 2, full.len() - 1] {
            std::fs::write(&p, &full[..cut]).expect("truncate");
            let err = read_checksummed(&p).expect_err("must reject truncation");
            assert!(err.is_corruption(), "cut at {cut}: {err}");
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bit_flip_detected_anywhere_in_payload() {
        let p = temp_file("sum_flip");
        write_checksummed(&p, b"sensitive model weights").expect("write");
        let full = std::fs::read(&p).expect("read");
        for pos in [0, 5, full.len() - FOOTER_LEN as usize - 1] {
            let mut bad = full.clone();
            bad[pos] ^= 0x40;
            std::fs::write(&p, &bad).expect("corrupt");
            let err = read_checksummed(&p).expect_err("must reject bit flip");
            assert!(
                matches!(err, IoGuardError::ChecksumMismatch { .. }),
                "pos {pos}: {err}"
            );
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn footer_magic_required() {
        let p = temp_file("sum_magic");
        std::fs::write(&p, vec![0u8; 64]).expect("write");
        let err = read_checksummed(&p).expect_err("no magic");
        assert_eq!(
            err,
            IoGuardError::BadMagic {
                path: p.display().to_string()
            }
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn missing_file_is_io_error_with_path() {
        let p = Path::new("/nonexistent/deepod/artifact.ckpt");
        let err = read_checksummed(p).expect_err("missing file");
        assert!(matches!(err, IoGuardError::Io { .. }));
        assert!(!err.is_corruption());
        assert_eq!(err.path(), p.display().to_string());
    }

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn transient_errors_retry_then_succeed() {
        let mut calls = 0;
        let out = with_retry(Path::new("x"), "op", || {
            calls += 1;
            if calls < 3 {
                Err(std::io::Error::from(ErrorKind::Interrupted))
            } else {
                Ok(42)
            }
        })
        .expect("succeeds on third try");
        assert_eq!(out, 42);
        assert_eq!(calls, 3);
    }

    #[test]
    fn transient_errors_bounded() {
        let mut calls = 0;
        let err = with_retry(Path::new("x"), "op", || -> std::io::Result<()> {
            calls += 1;
            Err(std::io::Error::from(ErrorKind::WouldBlock))
        })
        .expect_err("gives up");
        assert_eq!(calls, RETRY_BACKOFF_MS.len());
        assert!(matches!(err, IoGuardError::Io { .. }));
    }

    #[test]
    fn permanent_errors_do_not_retry() {
        let mut calls = 0;
        let _ = with_retry(Path::new("x"), "op", || -> std::io::Result<()> {
            calls += 1;
            Err(std::io::Error::from(ErrorKind::NotFound))
        });
        assert_eq!(calls, 1);
    }
}

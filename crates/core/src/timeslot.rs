//! Time slots and remainders (§4.2, Def. 4): a timestamp `t` is projected
//! onto a slot `t_p = ⌊(t − t₀)/Δt⌋` and a remainder `t_r = t − t₀ − t_p·Δt`;
//! slots wrap onto a weekly temporal graph of `week/Δt` nodes.

use serde::{Deserialize, Serialize};

/// Seconds per week (temporal-graph period).
const WEEK: f64 = 7.0 * 86_400.0;

/// The slot discretization of one experiment: base timestamp `t0` and slot
/// size `Δt` seconds.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TimeSlots {
    /// Base timestamp t₀; must be ≤ every timestamp in the data.
    pub t0: f64,
    /// Slot size Δt in seconds.
    pub dt: f64,
}

impl TimeSlots {
    /// Creates a discretization. Panics on non-positive Δt or a Δt that
    /// does not divide a week into whole slots (the weekly wrap would skew).
    pub fn new(t0: f64, dt: f64) -> Self {
        assert!(dt > 0.0, "slot size must be positive");
        let per_week = WEEK / dt;
        assert!(
            (per_week - per_week.round()).abs() < 1e-9,
            "slot size {dt}s must divide a week exactly"
        );
        TimeSlots { t0, dt }
    }

    /// The paper's default: 5-minute slots (288/day, 2016/week).
    pub fn five_minutes() -> Self {
        TimeSlots::new(0.0, 300.0)
    }

    /// Absolute slot index t_p of a timestamp (Eq. 2). Panics when
    /// `t < t0` in debug builds; clamps in release.
    pub fn slot(&self, t: f64) -> usize {
        debug_assert!(t >= self.t0, "timestamp {t} before base {}", self.t0);
        deepod_tensor::floor_index((t - self.t0).max(0.0) / self.dt)
    }

    /// Remainder t_r of a timestamp within its slot (Eq. 3).
    pub fn remainder(&self, t: f64) -> f64 {
        let tp = self.slot(t);
        (t - self.t0 - tp as f64 * self.dt).clamp(0.0, self.dt)
    }

    /// Remainder normalized to `[0, 1)` — what the encoders consume so the
    /// feature scale is independent of Δt.
    pub fn remainder_norm(&self, t: f64) -> f32 {
        (self.remainder(t) / self.dt) as f32
    }

    /// Slots per day.
    pub fn slots_per_day(&self) -> usize {
        deepod_tensor::round_count(86_400.0 / self.dt)
    }

    /// Slots per week — the temporal graph's node count.
    pub fn slots_per_week(&self) -> usize {
        deepod_tensor::round_count(WEEK / self.dt)
    }

    /// Weekly temporal-graph node of an absolute slot (`t_p mod week`).
    pub fn week_node(&self, tp: usize) -> usize {
        tp % self.slots_per_week()
    }

    /// Weekly node of a timestamp directly.
    pub fn week_node_of(&self, t: f64) -> usize {
        self.week_node(self.slot(t))
    }

    /// The inclusive list of weekly nodes covered by `[a, b]` — the Δd
    /// slots of §4.3, Eq. 4. Capped at one week of slots (an interval
    /// longer than a week covers every node anyway).
    pub fn interval_week_nodes(&self, a: f64, b: f64) -> Vec<usize> {
        assert!(b >= a, "interval end before start");
        let (sa, sb) = (self.slot(a), self.slot(b));
        let count = (sb - sa + 1).min(self.slots_per_week());
        (0..count).map(|k| self.week_node(sa + k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_default_2016_nodes() {
        let ts = TimeSlots::five_minutes();
        assert_eq!(ts.slots_per_day(), 288);
        assert_eq!(ts.slots_per_week(), 2016);
    }

    #[test]
    fn slot_and_remainder() {
        let ts = TimeSlots::new(100.0, 300.0);
        assert_eq!(ts.slot(100.0), 0);
        assert_eq!(ts.slot(399.9), 0);
        assert_eq!(ts.slot(400.0), 1);
        assert!((ts.remainder(250.0) - 150.0).abs() < 1e-9);
        assert!((ts.remainder_norm(250.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn week_wrap() {
        let ts = TimeSlots::five_minutes();
        let monday_8am = 8.0 * 3600.0;
        let next_monday_8am = monday_8am + WEEK;
        assert_eq!(
            ts.week_node_of(monday_8am),
            ts.week_node_of(next_monday_8am)
        );
        assert_ne!(
            ts.week_node_of(monday_8am),
            ts.week_node_of(monday_8am + 86_400.0)
        );
    }

    #[test]
    fn interval_nodes() {
        let ts = TimeSlots::new(0.0, 300.0);
        // [10, 910] spans slots 0..=3.
        let nodes = ts.interval_week_nodes(10.0, 910.0);
        assert_eq!(nodes, vec![0, 1, 2, 3]);
        // Degenerate interval: one slot.
        assert_eq!(ts.interval_week_nodes(50.0, 50.0), vec![0]);
    }

    #[test]
    fn interval_capped_at_one_week() {
        let ts = TimeSlots::new(0.0, 21_600.0); // 6 h slots, 28/week
        let nodes = ts.interval_week_nodes(0.0, 3.0 * WEEK);
        assert_eq!(nodes.len(), 28);
    }

    #[test]
    #[should_panic(expected = "divide a week")]
    fn non_divisor_slot_rejected() {
        let _ = TimeSlots::new(0.0, 1234.5);
    }

    proptest! {
        /// Reconstruction invariant of Eq. 2+3: t = t0 + tp·Δt + tr.
        #[test]
        fn slot_remainder_reconstruct(t in 0.0f64..10.0 * WEEK) {
            let ts = TimeSlots::five_minutes();
            let tp = ts.slot(t);
            let tr = ts.remainder(t);
            prop_assert!((ts.t0 + tp as f64 * ts.dt + tr - t).abs() < 1e-6);
            prop_assert!(tr >= 0.0 && tr < ts.dt + 1e-9);
        }

        /// Weekly node is always in range.
        #[test]
        fn week_node_in_range(t in 0.0f64..50.0 * WEEK) {
            let ts = TimeSlots::five_minutes();
            prop_assert!(ts.week_node_of(t) < ts.slots_per_week());
        }

        /// Consecutive timestamps map to the same or the next slot.
        #[test]
        fn slots_monotone(t in 0.0f64..WEEK, d in 0.0f64..600.0) {
            let ts = TimeSlots::five_minutes();
            prop_assert!(ts.slot(t + d) >= ts.slot(t));
        }
    }
}

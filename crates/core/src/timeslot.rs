//! Time slots and remainders (§4.2, Def. 4): a timestamp `t` is projected
//! onto a slot `t_p = ⌊(t − t₀)/Δt⌋` and a remainder `t_r = t − t₀ − t_p·Δt`;
//! slots wrap onto a weekly temporal graph of `week/Δt` nodes.
//!
//! Slot attribution is the cache key of the serving oracle tier, so the
//! boundary behaviour is load-bearing and pinned down precisely:
//!
//! * a timestamp on an exact slot edge (`t = t₀ + k·Δt`, even when the
//!   product is computed in floating point and lands one ulp off the true
//!   edge) always maps to slot `k` with remainder `0` — [`Self::slot_rem`]
//!   snaps within a relative tolerance of a few ulps;
//! * [`Self::remainder_norm`] honours its `[0, 1)` contract for *all*
//!   inputs — including the f32 rounding hazard where `(r/Δt) as f32`
//!   rounds a value just below `1.0` up to exactly `1.0`;
//! * pre-epoch timestamps (`t < t₀`) never panic: they clamp to slot `0`
//!   and bump the `core.timeslot_clamped` counter so the aliasing is
//!   observable. Callers that must not alias (the serve cache key) use
//!   [`Self::slot_rem_checked`] and reject instead.

use serde::{Deserialize, Serialize};

/// Seconds per week (temporal-graph period).
const WEEK: f64 = 7.0 * 86_400.0;

/// Largest `f32` strictly below `1.0` (`1 − 2⁻²⁴`): the upper clamp of
/// [`TimeSlots::remainder_norm`]'s half-open contract.
const MAX_REM_NORM: f32 = f32::from_bits(0x3F7F_FFFF);

/// A [`TimeSlots`] construction error: the slot size from user-supplied
/// configuration is unusable. Library code returns this instead of
/// panicking; the CLI maps it to a plain-language message.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TimeSlotError {
    /// Δt was zero, negative, or not finite.
    NonPositive {
        /// The offending slot size.
        dt: f64,
    },
    /// Δt does not divide a week into whole slots, so the weekly wrap
    /// would skew (the last slot of the week would be short).
    NotWeekDivisor {
        /// The offending slot size.
        dt: f64,
    },
}

impl std::fmt::Display for TimeSlotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimeSlotError::NonPositive { dt } => {
                write!(
                    f,
                    "slot size must be a positive number of seconds, got {dt}"
                )
            }
            TimeSlotError::NotWeekDivisor { dt } => write!(
                f,
                "slot size {dt}s must divide a week ({WEEK}s) into whole slots"
            ),
        }
    }
}

impl std::error::Error for TimeSlotError {}

/// Eagerly registers the slot-math counters so metrics snapshots carry
/// the keys even on runs where nothing clamps.
pub fn register_metrics() {
    crate::obs::registry::counter_add("core.timeslot_clamped", 0);
}

/// The slot discretization of one experiment: base timestamp `t0` and slot
/// size `Δt` seconds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimeSlots {
    /// Base timestamp t₀; must be ≤ every timestamp in the data.
    pub t0: f64,
    /// Slot size Δt in seconds.
    pub dt: f64,
}

impl TimeSlots {
    /// Creates a discretization. Errors on a non-positive Δt or a Δt that
    /// does not divide a week into whole slots (the weekly wrap would
    /// skew) — both reachable from user-supplied config, so this is a
    /// typed error rather than a panic.
    pub fn new(t0: f64, dt: f64) -> Result<Self, TimeSlotError> {
        if !dt.is_finite() || dt <= 0.0 {
            return Err(TimeSlotError::NonPositive { dt });
        }
        let per_week = WEEK / dt;
        if (per_week - per_week.round()).abs() >= 1e-9 {
            return Err(TimeSlotError::NotWeekDivisor { dt });
        }
        Ok(TimeSlots { t0, dt })
    }

    /// The paper's default: 5-minute slots (288/day, 2016/week).
    pub fn five_minutes() -> Self {
        // Known-good literal: 300 s divides a week into 2016 whole slots,
        // so this cannot hit either `new` error arm.
        TimeSlots { t0: 0.0, dt: 300.0 }
    }

    /// Slot index and in-slot remainder of a timestamp, computed together
    /// so the two can never disagree about which side of a boundary `t`
    /// fell on (Eq. 2 + 3).
    ///
    /// Guarantees, for every finite input:
    ///
    /// * the remainder is in `[0, Δt)` — never `Δt` itself;
    /// * `t = t₀ + k·Δt` maps to `(k, 0.0)` even when the product was
    ///   computed in f64 and rounded one ulp off the exact edge (a
    ///   relative snap tolerance of `4·ε` absorbs the rounding);
    /// * `t < t₀` (and non-finite `t`) clamps to `(0, 0.0)` and counts
    ///   the event on `core.timeslot_clamped` — use
    ///   [`Self::slot_rem_checked`] where aliasing slot 0 is not
    ///   acceptable.
    pub fn slot_rem(&self, t: f64) -> (usize, f64) {
        let rel = t - self.t0;
        if !rel.is_finite() || rel < 0.0 {
            crate::obs::registry::counter_inc("core.timeslot_clamped");
            return (0, 0.0);
        }
        let mut k = deepod_tensor::floor_index(rel / self.dt);
        let mut r = rel - k as f64 * self.dt;
        // `floor_index(rel / dt)` can overshoot by one when `rel/dt`
        // rounds up to the next integer; walk back so r is non-negative.
        if r < 0.0 {
            k = k.saturating_sub(1);
            r = rel - k as f64 * self.dt;
        }
        // Snap-to-edge: a remainder within a few ulps of Δt *is* the next
        // slot's boundary, attributed deterministically as (k+1, 0). The
        // tolerance is relative to `rel` so huge timestamps (where one ulp
        // of `rel` exceeds Δt) still resolve deterministically instead of
        // flapping with float rounding.
        let tol = rel.max(self.dt) * (4.0 * f64::EPSILON);
        if r >= self.dt - tol {
            k = k.saturating_add(1);
            r = 0.0;
        }
        (k, r.max(0.0))
    }

    /// [`Self::slot_rem`] without the pre-epoch clamp: `None` when
    /// `t < t₀` or `t` is not finite. The serve cache key goes through
    /// this so a pre-epoch timestamp cannot alias slot 0's entry.
    pub fn slot_rem_checked(&self, t: f64) -> Option<(usize, f64)> {
        (t.is_finite() && t >= self.t0).then(|| self.slot_rem(t))
    }

    /// Absolute slot index t_p of a timestamp (Eq. 2). Clamps `t < t0` to
    /// slot 0 (counted on `core.timeslot_clamped`).
    pub fn slot(&self, t: f64) -> usize {
        self.slot_rem(t).0
    }

    /// Remainder t_r of a timestamp within its slot (Eq. 3); always in
    /// `[0, Δt)`.
    pub fn remainder(&self, t: f64) -> f64 {
        self.slot_rem(t).1
    }

    /// Remainder normalized to `[0, 1)` — what the encoders consume so the
    /// feature scale is independent of Δt. The upper bound is strict even
    /// under f32 rounding: a remainder one ulp below Δt would cast to
    /// exactly `1.0f32`, so the cast is clamped to the largest f32 below
    /// `1.0`.
    pub fn remainder_norm(&self, t: f64) -> f32 {
        // `remainder` is finite and non-negative and `dt` is positive
        // finite, so the ratio can never be NaN and clamp is safe.
        ((self.remainder(t) / self.dt) as f32).clamp(0.0, MAX_REM_NORM)
    }

    /// Slots per day.
    pub fn slots_per_day(&self) -> usize {
        deepod_tensor::round_count(86_400.0 / self.dt)
    }

    /// Slots per week — the temporal graph's node count.
    pub fn slots_per_week(&self) -> usize {
        deepod_tensor::round_count(WEEK / self.dt)
    }

    /// Weekly temporal-graph node of an absolute slot (`t_p mod week`).
    pub fn week_node(&self, tp: usize) -> usize {
        tp % self.slots_per_week()
    }

    /// Weekly node of a timestamp directly.
    pub fn week_node_of(&self, t: f64) -> usize {
        self.week_node(self.slot(t))
    }

    /// The inclusive list of weekly nodes covered by `[a, b]` — the Δd
    /// slots of §4.3, Eq. 4. Capped at one week of slots (an interval
    /// longer than a week covers every node anyway). A reversed interval
    /// (`b < a`) is normalized rather than panicking — no panic is
    /// reachable from this type's public API.
    pub fn interval_week_nodes(&self, a: f64, b: f64) -> Vec<usize> {
        let (lo, hi) = if b >= a { (a, b) } else { (b, a) };
        let (sa, sb) = (self.slot(lo), self.slot(hi));
        let count = (sb.saturating_sub(sa) + 1).min(self.slots_per_week());
        (0..count)
            .map(|k| self.week_node(sa.saturating_add(k)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Every Δt used by the boundary proptests divides a week exactly.
    const DIVISOR_DTS: [f64; 6] = [1.0, 60.0, 300.0, 1800.0, 3600.0, 21_600.0];

    #[test]
    fn paper_default_2016_nodes() {
        let ts = TimeSlots::five_minutes();
        assert_eq!(ts.slots_per_day(), 288);
        assert_eq!(ts.slots_per_week(), 2016);
    }

    #[test]
    fn slot_and_remainder() {
        let ts = TimeSlots::new(100.0, 300.0).expect("valid slot size");
        assert_eq!(ts.slot(100.0), 0);
        assert_eq!(ts.slot(399.9), 0);
        assert_eq!(ts.slot(400.0), 1);
        assert!((ts.remainder(250.0) - 150.0).abs() < 1e-9);
        assert!((ts.remainder_norm(250.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn week_wrap() {
        let ts = TimeSlots::five_minutes();
        let monday_8am = 8.0 * 3600.0;
        let next_monday_8am = monday_8am + WEEK;
        assert_eq!(
            ts.week_node_of(monday_8am),
            ts.week_node_of(next_monday_8am)
        );
        assert_ne!(
            ts.week_node_of(monday_8am),
            ts.week_node_of(monday_8am + 86_400.0)
        );
    }

    #[test]
    fn interval_nodes() {
        let ts = TimeSlots::new(0.0, 300.0).expect("valid slot size");
        // [10, 910] spans slots 0..=3.
        let nodes = ts.interval_week_nodes(10.0, 910.0);
        assert_eq!(nodes, vec![0, 1, 2, 3]);
        // Degenerate interval: one slot.
        assert_eq!(ts.interval_week_nodes(50.0, 50.0), vec![0]);
        // Reversed interval normalizes instead of panicking.
        assert_eq!(ts.interval_week_nodes(910.0, 10.0).len(), 4);
    }

    #[test]
    fn interval_capped_at_one_week() {
        let ts = TimeSlots::new(0.0, 21_600.0).expect("valid slot size"); // 6 h slots, 28/week
        let nodes = ts.interval_week_nodes(0.0, 3.0 * WEEK);
        assert_eq!(nodes.len(), 28);
    }

    #[test]
    fn non_divisor_slot_rejected_with_typed_error() {
        assert_eq!(
            TimeSlots::new(0.0, 1234.5),
            Err(TimeSlotError::NotWeekDivisor { dt: 1234.5 })
        );
        assert_eq!(
            TimeSlots::new(0.0, 0.0),
            Err(TimeSlotError::NonPositive { dt: 0.0 })
        );
        assert_eq!(
            TimeSlots::new(0.0, -300.0),
            Err(TimeSlotError::NonPositive { dt: -300.0 })
        );
        assert!(matches!(
            TimeSlots::new(0.0, f64::NAN),
            Err(TimeSlotError::NonPositive { .. })
        ));
        assert!(TimeSlots::new(0.0, f64::INFINITY).is_err());
        let msg = TimeSlots::new(0.0, 1234.5).unwrap_err().to_string();
        assert!(msg.contains("divide a week"), "got: {msg}");
    }

    #[test]
    fn pre_epoch_clamps_and_counts_instead_of_panicking() {
        let ts = TimeSlots::new(100.0, 300.0).expect("valid slot size");
        crate::obs::registry::counter_add("core.timeslot_clamped", 0);
        let before = crate::obs::registry::snapshot()
            .counters
            .get("core.timeslot_clamped")
            .copied()
            .unwrap_or(0);
        assert_eq!(ts.slot_rem(-1e9), (0, 0.0));
        assert_eq!(ts.slot_rem(f64::NAN), (0, 0.0));
        let after = crate::obs::registry::snapshot()
            .counters
            .get("core.timeslot_clamped")
            .copied()
            .unwrap_or(0);
        assert!(
            after >= before + 2,
            "clamp events counted: {before}->{after}"
        );
        // The checked variant rejects instead.
        assert_eq!(ts.slot_rem_checked(-1.0), None);
        assert_eq!(ts.slot_rem_checked(f64::NAN), None);
        assert_eq!(ts.slot_rem_checked(100.0), Some((0, 0.0)));
    }

    #[test]
    fn exact_boundary_is_slot_k_remainder_zero() {
        let ts = TimeSlots::five_minutes();
        for k in [0usize, 1, 7, 288, 2016, 10_000] {
            let t = ts.t0 + k as f64 * ts.dt;
            assert_eq!(ts.slot_rem(t), (k, 0.0), "boundary k={k}");
        }
        // One ulp below the edge still snaps up to (k, 0).
        let edge = ts.t0 + 12.0 * ts.dt;
        let just_below = f64::from_bits(edge.to_bits() - 1);
        assert_eq!(ts.slot_rem(just_below), (12, 0.0));
    }

    proptest! {
        /// Reconstruction invariant of Eq. 2+3: t ≈ t0 + tp·Δt + tr
        /// (within the boundary snap tolerance).
        #[test]
        fn slot_remainder_reconstruct(t in 0.0f64..10.0 * WEEK) {
            let ts = TimeSlots::five_minutes();
            let (tp, tr) = ts.slot_rem(t);
            prop_assert!((ts.t0 + tp as f64 * ts.dt + tr - t).abs() < 1e-5);
            prop_assert!(tr >= 0.0 && tr < ts.dt);
        }

        /// The normalized remainder honours its half-open contract for
        /// every input, at every week-divisor slot size.
        #[test]
        fn remainder_norm_in_half_open_unit(
            t in -WEEK..50.0 * WEEK,
            dt_idx in 0usize..DIVISOR_DTS.len(),
        ) {
            let ts = TimeSlots::new(0.0, DIVISOR_DTS[dt_idx]).expect("divisor dt");
            let r = ts.remainder_norm(t);
            prop_assert!((0.0..1.0).contains(&r), "remainder_norm({t}) = {r}");
        }

        /// Exact slot edges (t = t0 + k·Δt, computed in f64) attribute
        /// deterministically to slot k with remainder 0 — including the
        /// week-wrap edge and t = t0 itself (k = 0).
        #[test]
        fn exact_edges_deterministic(
            k in 0usize..100_000,
            dt_idx in 0usize..DIVISOR_DTS.len(),
            t0 in 0.0f64..1e6,
        ) {
            let ts = TimeSlots::new(t0.trunc(), DIVISOR_DTS[dt_idx]).expect("divisor dt");
            let t = ts.t0 + k as f64 * ts.dt;
            prop_assert_eq!(ts.slot_rem(t), (k, 0.0));
            prop_assert_eq!(ts.remainder_norm(t), 0.0);
            prop_assert_eq!(ts.week_node_of(t), k % ts.slots_per_week());
        }

        /// Weekly node is always in range.
        #[test]
        fn week_node_in_range(t in 0.0f64..50.0 * WEEK) {
            let ts = TimeSlots::five_minutes();
            prop_assert!(ts.week_node_of(t) < ts.slots_per_week());
        }

        /// Consecutive timestamps map to the same or the next slot.
        #[test]
        fn slots_monotone(t in 0.0f64..WEEK, d in 0.0f64..600.0) {
            let ts = TimeSlots::five_minutes();
            prop_assert!(ts.slot(t + d) >= ts.slot(t));
        }

        /// No input — pre-epoch, huge, or adversarially close to an edge —
        /// panics anywhere in the public API.
        #[test]
        fn public_api_never_panics(t in -1e18f64..1e18, u in -1e18f64..1e18) {
            let ts = TimeSlots::five_minutes();
            let _ = ts.slot_rem(t);
            let _ = ts.slot_rem_checked(t);
            let _ = ts.slot(t);
            let _ = ts.remainder(t);
            let _ = ts.remainder_norm(t);
            let _ = ts.week_node_of(t);
            let _ = ts.interval_week_nodes(t, u);
        }
    }
}

//! Model and training hyper-parameters.
//!
//! Field names mirror the paper's notation (Table 1 / §6.2): `d_s`/`d_t`
//! are the road-segment and time-slot embedding widths; `d1m..d9m` the
//! per-MLP layer widths; `d_h` the LSTM state width; `d_traf` the
//! traffic-CNN output width. The defaults are scaled down from the paper's
//! tuned values (§6.2: d_s = d_t = 64, d_h = 128 …) so a full training run
//! finishes in seconds on one CPU core; `DeepOdConfig::paper_scale()`
//! restores the published sizes.

use crate::ablation::{EmbeddingInit, Variant};
use serde::{Deserialize, Serialize};

/// All DeepOD hyper-parameters.
///
/// `PartialEq` is derived so checkpoint resume can verify that a saved
/// training state matches the trainer's configuration exactly (any drift
/// would silently break the bit-identical-resume guarantee).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeepOdConfig {
    /// Road-segment embedding width d_s.
    pub ds: usize,
    /// Time-slot embedding width d_t.
    pub dt_dim: usize,
    /// Interval-encoder MLP hidden width d¹_m.
    pub d1m: usize,
    /// Interval-encoder MLP output width d²_m (tcode width).
    pub d2m: usize,
    /// Trajectory-encoder MLP hidden width d³_m.
    pub d3m: usize,
    /// Representation width d⁴_m = d⁸_m (stcode and code must match).
    pub d4m: usize,
    /// External-encoder MLP hidden width d⁵_m.
    pub d5m: usize,
    /// External-encoder output width d⁶_m (ocode width).
    pub d6m: usize,
    /// MLP1 hidden width d⁷_m.
    pub d7m: usize,
    /// MLP2 hidden width d⁹_m.
    pub d9m: usize,
    /// LSTM hidden width d_h.
    pub dh: usize,
    /// Traffic-CNN output width d_traf.
    pub dtraf: usize,
    /// Time-slot size Δt in seconds (paper default 300 s).
    pub slot_seconds: f64,
    /// Auxiliary-loss weight w (paper: 0.7 Chengdu / 0.3 Xi'an / 0.5
    /// Beijing; tuned per dataset in Fig. 9).
    pub loss_weight: f32,
    /// Training epochs I.
    pub epochs: usize,
    /// Minibatch size bs (paper: 1024; scaled down by default).
    pub batch_size: usize,
    /// Initial learning rate (paper: 0.01, /5 every 2 epochs).
    pub lr: f32,
    /// Model variant (ablations N-st / N-sp / N-tp / N-other).
    pub variant: Variant,
    /// Embedding initialization (node2vec default; T-one/R-one/T-day/
    /// T-stamp ablations of §6.5).
    pub init: EmbeddingInit,
    /// Training refinement: also supervise M_E on `stcode` (teaches the
    /// regression head the stcode → time mapping directly, which at small
    /// data scales stabilizes the paper's code↔stcode binding; online
    /// estimation still uses only M_O + M_E). See DESIGN.md.
    pub stcode_supervision: bool,
    /// Parameter-init RNG seed.
    pub seed: u64,
}

impl Default for DeepOdConfig {
    fn default() -> Self {
        DeepOdConfig {
            ds: 16,
            dt_dim: 16,
            d1m: 32,
            d2m: 16,
            d3m: 32,
            d4m: 16,
            d5m: 32,
            d6m: 16,
            d7m: 32,
            d9m: 32,
            dh: 32,
            dtraf: 16,
            slot_seconds: 300.0,
            loss_weight: 0.5,
            epochs: 3,
            batch_size: 32,
            lr: 0.01,
            variant: Variant::Full,
            init: EmbeddingInit::Node2Vec,
            stcode_supervision: true,
            seed: 0x00DE_E90D,
        }
    }
}

impl DeepOdConfig {
    /// The paper's tuned hyper-parameters (§6.2): d_s = d_t = 64,
    /// d¹_m = 128, d²_m = 64, d_h = 128, d³_m = 128, d⁴_m = d⁸_m = 64,
    /// d⁵_m = 128, d⁶_m = 64, d⁷_m = 128, d⁹_m = 128, d_traf = 128,
    /// batch 1024.
    pub fn paper_scale() -> Self {
        DeepOdConfig {
            ds: 64,
            dt_dim: 64,
            d1m: 128,
            d2m: 64,
            d3m: 128,
            d4m: 64,
            d5m: 128,
            d6m: 64,
            d7m: 128,
            d9m: 128,
            dh: 128,
            dtraf: 128,
            batch_size: 1024,
            epochs: 10,
            ..Default::default()
        }
    }

    /// The width of `code`/`stcode` (d⁸_m is tied to d⁴_m per §4.6).
    pub fn code_dim(&self) -> usize {
        self.d4m
    }

    /// Validates internal consistency; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("ds", self.ds),
            ("dt_dim", self.dt_dim),
            ("d1m", self.d1m),
            ("d2m", self.d2m),
            ("d3m", self.d3m),
            ("d4m", self.d4m),
            ("d5m", self.d5m),
            ("d6m", self.d6m),
            ("d7m", self.d7m),
            ("d9m", self.d9m),
            ("dh", self.dh),
            ("dtraf", self.dtraf),
            ("epochs", self.epochs),
            ("batch_size", self.batch_size),
        ] {
            if v == 0 {
                return Err(format!("{name} must be positive"));
            }
        }
        if !(0.0..=1.0).contains(&self.loss_weight) {
            return Err(format!("loss_weight {} outside [0,1]", self.loss_weight));
        }
        // Delegate the full slot-size contract (positive AND a whole-slot
        // divisor of a week) to the discretization's own constructor, so a
        // validated config can never fail `TimeSlots::new` downstream.
        if let Err(e) = crate::timeslot::TimeSlots::new(0.0, self.slot_seconds) {
            return Err(format!("slot_seconds: {e}"));
        }
        if self.lr <= 0.0 {
            return Err("lr must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        assert!(DeepOdConfig::default().validate().is_ok());
        assert!(DeepOdConfig::paper_scale().validate().is_ok());
    }

    #[test]
    fn paper_scale_matches_section_6_2() {
        let c = DeepOdConfig::paper_scale();
        assert_eq!((c.ds, c.dt_dim), (64, 64));
        assert_eq!((c.d1m, c.d2m), (128, 64));
        assert_eq!((c.d3m, c.d4m), (128, 64));
        assert_eq!((c.d5m, c.d6m), (128, 64));
        assert_eq!((c.d7m, c.d9m), (128, 128));
        assert_eq!(c.dh, 128);
        assert_eq!(c.dtraf, 128);
        assert_eq!(c.batch_size, 1024);
        assert_eq!(c.code_dim(), 64);
    }

    #[test]
    fn validation_catches_bad_values() {
        let c = DeepOdConfig {
            loss_weight: 1.5,
            ..DeepOdConfig::default()
        };
        assert!(c.validate().is_err());
        let c = DeepOdConfig {
            ds: 0,
            ..DeepOdConfig::default()
        };
        assert!(c.validate().is_err());
        let c = DeepOdConfig {
            slot_seconds: -1.0,
            ..DeepOdConfig::default()
        };
        assert!(c.validate().is_err());
        // A positive slot size that does not divide a week is rejected up
        // front, not first at FeatureContext::build time.
        let c = DeepOdConfig {
            slot_seconds: 777.0,
            ..DeepOdConfig::default()
        };
        let err = c.validate().expect_err("non-divisor slot size");
        assert!(err.contains("divide a week"), "got: {err}");
    }

    #[test]
    fn serde_round_trip() {
        let c = DeepOdConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: DeepOdConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.ds, c.ds);
        assert_eq!(back.loss_weight, c.loss_weight);
    }
}

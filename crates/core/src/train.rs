//! The training loop of Alg. 1: minibatch SGD with Adam, the combined
//! `w·auxiliary + (1−w)·main` loss, the paper's LR schedule (0.01, ÷5
//! every 2 epochs), per-step validation tracking (Fig. 10), and
//! convergence accounting (Table 3).

use crate::checkpoint::{TrainProgress, TrainingCheckpoint, CHECKPOINT_VERSION};
use crate::config::DeepOdConfig;
use crate::features::{EncodedSample, FeatureContext};
use crate::model::{DeepOdModel, ModelError};
use deepod_nn::{AdamOptimizer, Gradients, LrSchedule};
use deepod_roadnet::RoadNetwork;
use deepod_traj::CityDataset;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
// Wall clocks time the *report*, never the computation: loss curves and
// model selection depend only on (seed, thread count). deepod-lint's
// nondeterminism rule is relaxed for exactly these two call sites.
// deepod-lint: allow(nondeterminism)
use std::time::Instant;

/// Eagerly materializes every metric key the training loop emits, so a
/// snapshot taken before (or without) training still carries the full
/// key set. Called once per process from `RuntimeConfig::apply`.
pub fn register_metrics() {
    use crate::obs::registry;
    registry::counter_add("train.steps", 0);
    registry::counter_add("train.evals", 0);
    registry::counter_add("train.epochs", 0);
    registry::counter_add("checkpoint.resume_hits", 0);
    registry::register_histogram("train.grad_norm");
    registry::register_gauge("train.loss_last");
    registry::register_gauge("train.loss_main_last");
    registry::register_gauge("train.loss_aux_last");
    registry::register_gauge("train.val_mae_last");
    registry::register_gauge("train.best_val_mae");
    registry::register_series("train.epoch_loss");
    registry::register_series("train.val_mae");
}

/// Training-loop options independent of the model config.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainOptions {
    /// Evaluate validation MAE every `eval_every` steps (0 = per epoch).
    pub eval_every: usize,
    /// Cap on validation samples per evaluation (keeps Fig. 10-style
    /// curves cheap).
    pub max_eval_samples: usize,
    /// Stop early when validation MAE hasn't improved for this many
    /// evaluations (0 = never).
    pub patience: usize,
    /// Gradient clipping threshold (global norm, 0 = off).
    pub clip_norm: f32,
    /// Decoupled weight decay (AdamW); regularizes against the overfitting
    /// that small synthetic datasets invite.
    pub weight_decay: f32,
    /// Worker threads for minibatch gradients, validation and batch
    /// prediction. `0` resolves to `DEEPOD_THREADS` (or the machine's
    /// available parallelism). `1` runs the exact serial path.
    pub threads: usize,
    /// Raise the observability gate to `info` (unless `DEEPOD_LOG` set it
    /// explicitly) so per-eval and per-epoch progress events reach stderr.
    pub verbose: bool,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            eval_every: 50,
            max_eval_samples: 256,
            patience: 0,
            clip_norm: 5.0,
            weight_decay: 1e-3,
            threads: 0,
            verbose: false,
        }
    }
}

/// One point of the training curve.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Optimizer steps so far.
    pub step: usize,
    /// Validation MAE in seconds.
    pub val_mae: f32,
    /// Wall-clock seconds since training started.
    pub elapsed_s: f64,
}

/// Result of a training run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainReport {
    /// Validation-MAE curve (Fig. 10).
    pub curve: Vec<CurvePoint>,
    /// Best validation MAE observed.
    pub best_val_mae: f32,
    /// Step at which the run is considered converged (first step whose
    /// validation MAE is within 2 % of the final best — Table 3's
    /// "convergence steps").
    pub convergence_step: usize,
    /// Wall-clock seconds at the convergence step.
    pub convergence_time_s: f64,
    /// Total optimizer steps executed.
    pub total_steps: usize,
    /// Total wall-clock training seconds.
    pub total_time_s: f64,
    /// Mean training loss of the final epoch.
    pub final_train_loss: f32,
}

/// When and where [`Trainer::train_with_checkpoints`] persists training
/// state.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Save a checkpoint every `every_steps` optimizer steps (`0` = only
    /// at epoch boundaries; a boundary checkpoint is always written).
    pub every_steps: usize,
    /// Destination file, atomically replaced on every save — a crash
    /// mid-save leaves the previous checkpoint intact.
    pub path: PathBuf,
}

/// Summed per-minibatch loss with its components (observability only;
/// `loss` is the value the optimizer path always used).
#[derive(Clone, Copy, Debug, Default)]
struct BatchGrad {
    /// Summed combined loss over the batch.
    loss: f32,
    /// Summed main (MAE) component.
    main: f32,
    /// Summed auxiliary (code-binding) component.
    aux: f32,
}

impl BatchGrad {
    fn accumulate(&mut self, parts: &crate::model::LossParts) {
        self.loss += parts.total;
        self.main += parts.main;
        self.aux += parts.aux;
    }
}

/// Drives training of a [`DeepOdModel`] on a [`CityDataset`].
pub struct Trainer<'a> {
    ds: &'a CityDataset,
    ctx: FeatureContext,
    model: DeepOdModel,
    cfg: DeepOdConfig,
    opts: TrainOptions,
    train_samples: Vec<EncodedSample>,
    val_samples: Vec<EncodedSample>,
    /// Training state staged by [`Trainer::resume_from`], consumed by the
    /// next `train` call.
    pending_resume: Option<Box<TrainingCheckpoint>>,
}

impl<'a> Trainer<'a> {
    /// Builds the feature context, encodes the train/validation splits and
    /// initializes the model.
    pub fn new(
        ds: &'a CityDataset,
        cfg: DeepOdConfig,
        opts: TrainOptions,
    ) -> Result<Self, ModelError> {
        let ctx = FeatureContext::build(ds, cfg.slot_seconds)
            .map_err(|e| ModelError::InvalidConfig(e.to_string()))?;
        let model = DeepOdModel::new(&cfg, ds, &ctx)?;
        let train_samples = ctx.encode_orders(&ds.net, &ds.train);
        let val_samples = ctx.encode_orders(&ds.net, &ds.validation);
        if train_samples.is_empty() {
            return Err(ModelError::InvalidConfig(
                "no encodable training samples in the dataset".into(),
            ));
        }
        if val_samples.is_empty() {
            // Without this check an empty validation split used to flow
            // through as a silent NaN best_val_mae in serialized reports.
            return Err(ModelError::InvalidConfig(
                "no encodable validation samples in the dataset; \
                 validation MAE (and model selection) would be undefined"
                    .into(),
            ));
        }
        Ok(Trainer {
            ds,
            ctx,
            model,
            cfg,
            opts,
            train_samples,
            val_samples,
            pending_resume: None,
        })
    }

    /// The trained (or in-training) model.
    pub fn model(&mut self) -> &mut DeepOdModel {
        &mut self.model
    }

    /// Immutable view of the model. Batched inference
    /// ([`DeepOdModel::estimate_batch`]) takes `&self`, so this borrow can
    /// coexist with [`Self::context`] / [`Self::validation_samples`].
    pub fn model_ref(&self) -> &DeepOdModel {
        &self.model
    }

    /// Consumes the trainer, returning the model.
    pub fn into_model(self) -> DeepOdModel {
        self.model
    }

    /// The feature context + network pair needed for estimation calls.
    pub fn context(&self) -> (&FeatureContext, &RoadNetwork) {
        (&self.ctx, &self.ds.net)
    }

    /// Encoded validation samples (used by evaluation code).
    pub fn validation_samples(&self) -> &[EncodedSample] {
        &self.val_samples
    }

    /// Worker-thread count for gradient/eval fan-out (resolved from the
    /// options, `DEEPOD_THREADS`, or the machine).
    fn threads(&self) -> usize {
        deepod_tensor::parallel::resolve_threads(self.opts.threads)
    }

    /// Predicts travel times for a batch of orders with the current model
    /// (splits the context/model borrows internally). With more than one
    /// worker thread each span of orders runs on its own model clone;
    /// spans are contiguous and re-concatenated in order, so the output is
    /// identical for every thread count.
    pub fn predict_orders(&mut self, orders: &[deepod_traj::TaxiOrder]) -> Vec<Option<f32>> {
        let reqs: Vec<crate::PredictRequest> = orders
            .iter()
            .map(|o| crate::PredictRequest::Raw(o.od))
            .collect();
        self.model
            .estimate_batch(&self.ctx, &self.ds.net, &reqs, self.opts.threads)
            .into_iter()
            .map(|r| r.ok().map(|resp| resp.eta_seconds))
            .collect()
    }

    /// Predicts the travel time for one raw OD input.
    pub fn predict_od(&mut self, od: &deepod_traj::OdInput) -> Option<f32> {
        self.model
            .estimate_batch(
                &self.ctx,
                &self.ds.net,
                &[crate::PredictRequest::Raw(*od)],
                1,
            )
            .remove(0)
            .ok()
            .map(|resp| resp.eta_seconds)
    }

    /// Encoded training samples.
    pub fn train_samples(&self) -> &[EncodedSample] {
        &self.train_samples
    }

    /// Validation MAE of the current model over (a capped number of)
    /// validation samples.
    pub fn validation_mae(&mut self) -> f32 {
        let n = self
            .val_samples
            .len()
            .min(self.opts.max_eval_samples.max(1));
        if n == 0 {
            // Unreachable through `Trainer::new` (which rejects an empty
            // validation split), but never let it pass silently again.
            crate::obs::warn("train", "validation set empty; MAE undefined", &[]);
            return f32::NAN;
        }
        let t = self.threads().min(n).max(1);
        if t == 1 {
            let mut acc = 0.0f32;
            for s in &self.val_samples[..n] {
                let pred = self.model.eval_encoded(&s.od);
                acc += (pred - s.travel_time).abs();
            }
            return acc / n as f32;
        }
        // Per-span partial sums, added back in span order: the total is a
        // fixed left-to-right sum over spans, deterministic per thread
        // count.
        let model = &self.model;
        let samples = &self.val_samples;
        let sums = deepod_tensor::parallel::map_ranges(n, t, |span| {
            let mut local = model.clone();
            let mut acc = 0.0f32;
            for s in &samples[span] {
                let pred = local.eval_encoded(&s.od);
                acc += (pred - s.travel_time).abs();
            }
            acc
        });
        sums.into_iter().fold(0.0f32, |a, b| a + b) / n as f32
    }

    /// Summed loss and merged gradients for one minibatch.
    ///
    /// `threads == 1` runs the literal serial loop on the live model —
    /// bit-identical to the pre-parallel trainer. With more threads the
    /// batch is split into contiguous spans, each processed on a clone of
    /// the model (copy-on-write parameter store, so cloning is cheap);
    /// per-span losses are summed in span order and per-span gradients
    /// merged by a deterministic adjacent-pair tree reduction, making the
    /// result a pure function of (batch, thread count) — never of thread
    /// scheduling. Batch-norm running statistics accumulated by the
    /// workers are averaged back into the live model weighted by span
    /// length.
    fn batch_gradients(&mut self, chunk: &[usize], threads: usize) -> (BatchGrad, Gradients) {
        let t = threads.min(chunk.len()).max(1);
        if t == 1 {
            let mut grads = Gradients::new();
            let mut batch = BatchGrad::default();
            for &idx in chunk {
                let sample = self.train_samples[idx].clone();
                let (parts, g) = self.model.sample_gradients_traced(&sample);
                batch.accumulate(&parts);
                grads.merge(g);
            }
            return (batch, grads);
        }

        let model = &self.model;
        let samples = &self.train_samples;
        let results = deepod_tensor::parallel::map_ranges(chunk.len(), t, |span| {
            let mut local = model.clone();
            let mut grads = Gradients::new();
            let mut batch = BatchGrad::default();
            let len = span.len();
            for &idx in &chunk[span] {
                let sample = samples[idx].clone();
                let (parts, g) = local.sample_gradients_traced(&sample);
                batch.accumulate(&parts);
                grads.merge(g);
            }
            (len, batch, grads, local)
        });

        let total = chunk.len() as f32;
        let mut batch = BatchGrad::default();
        let mut grad_parts = Vec::with_capacity(results.len());
        let mut bn_workers = Vec::with_capacity(results.len());
        for (len, part, grads, local) in results {
            // Span-order sum, exactly like the old scalar loss: the total
            // stays a pure function of (batch, thread count).
            batch.loss += part.loss;
            batch.main += part.main;
            batch.aux += part.aux;
            grad_parts.push(grads);
            bn_workers.push((len as f32 / total, local));
        }
        self.model.merge_bn_stats(&bn_workers);
        let grads = deepod_tensor::parallel::tree_reduce(grad_parts, |mut a, b| {
            a.merge(b);
            a
        })
        .unwrap_or_default();
        (batch, grads)
    }

    /// Stages a [`TrainingCheckpoint`] so the next `train` call continues
    /// the interrupted run instead of starting fresh.
    ///
    /// The checkpoint's config and worker-thread count must match this
    /// trainer's exactly: both determine the floating-point stream, and
    /// silently accepting a mismatch would void the bit-identical-resume
    /// guarantee the crash-safety suite enforces.
    pub fn resume_from(&mut self, ckpt: TrainingCheckpoint) -> Result<(), ModelError> {
        if ckpt.model.config != self.cfg {
            return Err(ModelError::InvalidConfig(
                "checkpoint was produced by a different config; resume requires an identical one"
                    .into(),
            ));
        }
        let threads = self.threads();
        if ckpt.progress.threads != threads {
            return Err(ModelError::InvalidConfig(format!(
                "checkpoint was trained with {} worker threads but this trainer resolves to \
                 {threads}; gradient merge order depends on the thread count, so resume \
                 requires the same value (set TrainOptions::threads explicitly)",
                ckpt.progress.threads
            )));
        }
        self.pending_resume = Some(Box::new(ckpt));
        Ok(())
    }

    /// Runs Alg. 1's `ModelTrain` for the configured number of epochs and
    /// returns the training report.
    pub fn train(&mut self) -> TrainReport {
        // `Infallible` save callback: the error arm is statically
        // unreachable, keeping this signature panic-free without unwraps.
        let result: Result<TrainReport, std::convert::Infallible> =
            self.train_driver(None, |_| Ok(()));
        match result {
            Ok(report) => report,
            Err(e) => match e {},
        }
    }

    /// Like [`Trainer::train`], but persists a [`TrainingCheckpoint`]
    /// according to `policy` (atomically, with a checksum footer) so the
    /// run survives crashes. Combined with [`Trainer::resume_from`], a
    /// killed run continues with bit-identical loss/validation curves for
    /// the same `(seed, threads)`.
    pub fn train_with_checkpoints(
        &mut self,
        policy: &CheckpointPolicy,
    ) -> Result<TrainReport, ModelError> {
        let path = policy.path.clone();
        self.train_driver(Some(policy.every_steps), move |ckpt| ckpt.save(&path))
    }

    /// The training loop, generic over the checkpoint sink.
    ///
    /// `checkpoint_every` is `None` for plain training (the sink is never
    /// called), `Some(0)` for epoch-boundary checkpoints only, `Some(n)`
    /// for every `n` steps plus epoch boundaries. `save` failures abort
    /// the run — better to stop than to keep training unprotected.
    ///
    /// Resume correctness rests on three invariants:
    /// * the RNG state stored in a checkpoint is the state at the *start*
    ///   of its epoch, so the resumed run re-runs the shuffle and skips
    ///   the already-applied minibatches, landing on the exact stream
    ///   position of the uninterrupted run;
    /// * the partial `epoch_loss`/`epoch_batches` accumulators are carried
    ///   across, so `final_train_loss` stays bit-identical;
    /// * checkpoint saving itself consumes no randomness and never touches
    ///   the model, so an uninterrupted run with checkpoints enabled is
    ///   bit-identical to one without.
    fn train_driver<E>(
        &mut self,
        checkpoint_every: Option<usize>,
        mut save: impl FnMut(&TrainingCheckpoint) -> Result<(), E>,
    ) -> Result<TrainReport, E> {
        // The paper divides the LR by 5 every 2 epochs — with millions of
        // trips per epoch. At laptop scale an epoch is a few dozen steps,
        // so we scale the decay interval with the run length (÷5 happens
        // at the same *fraction* of training, ~2-3 times per run).
        let schedule = LrSchedule::StepDecay {
            base: self.cfg.lr,
            divisor: 5.0,
            every_epochs: 2usize.max(self.cfg.epochs.div_ceil(4)),
        };
        // deepod-lint: allow(nondeterminism) — report timing only
        let start = Instant::now();
        let bs = self.cfg.batch_size.max(1);
        let threads = self.threads();
        if self.opts.verbose {
            // Widen the default gate so progress events print; an explicit
            // DEEPOD_LOG still wins (the whole point of raise vs set).
            crate::obs::raise_max_level(crate::obs::Level::Info);
        }
        crate::obs::debug(
            "train",
            "training starts",
            &[
                ("epochs", self.cfg.epochs.into()),
                ("batch_size", bs.into()),
                ("threads", threads.into()),
                ("train_samples", self.train_samples.len().into()),
                ("val_samples", self.val_samples.len().into()),
            ],
        );

        let mut opt;
        let mut rng;
        let mut curve;
        let mut step;
        let mut best;
        let mut since_best;
        let mut final_train_loss;
        let mut best_store;
        let start_epoch;
        let resume_batches;
        let carried_epoch_loss;
        let elapsed_offset;
        match self.pending_resume.take() {
            Some(ckpt) => {
                let ckpt = *ckpt;
                self.model = ckpt.model;
                opt = AdamOptimizer::from_snapshot(&ckpt.optimizer);
                rng = rand::rngs::StdRng::from_state(ckpt.progress.rng_state);
                curve = ckpt.progress.curve;
                step = ckpt.progress.step;
                best = ckpt.progress.best_val_mae;
                since_best = ckpt.progress.since_best;
                final_train_loss = ckpt.progress.final_train_loss;
                best_store = ckpt.best_store;
                start_epoch = ckpt.progress.epoch;
                resume_batches = ckpt.progress.batches_done;
                carried_epoch_loss = (ckpt.progress.epoch_loss, ckpt.progress.epoch_batches);
                elapsed_offset = ckpt.progress.elapsed_s;
                crate::obs::registry::counter_inc("checkpoint.resume_hits");
                crate::obs::info(
                    "train",
                    "resumed from checkpoint",
                    &[
                        ("epoch", start_epoch.into()),
                        ("batches_done", resume_batches.into()),
                        ("step", step.into()),
                    ],
                );
            }
            None => {
                opt = AdamOptimizer::new(self.cfg.lr);
                opt.set_weight_decay(self.opts.weight_decay);
                rng = deepod_tensor::rng_from_seed(self.cfg.seed ^ 0x7124);
                curve = Vec::new();
                step = 0usize;
                best = f32::INFINITY;
                since_best = 0usize;
                final_train_loss = 0.0f32;
                // Initial point so curves start at the untrained model.
                let mae0 = self.validation_mae();
                best = best.min(mae0);
                curve.push(CurvePoint {
                    step: 0,
                    val_mae: mae0,
                    elapsed_s: 0.0,
                });
                crate::obs::registry::series_push("train.val_mae", 0, f64::from(mae0));
                // Best-checkpoint snapshot (shallow Rc clones; copy-on-write
                // keeps it intact while the optimizer updates the live
                // store).
                best_store = self.model.store.clone();
                start_epoch = 0;
                resume_batches = 0;
                carried_epoch_loss = (0.0f32, 0usize);
                elapsed_offset = 0.0f64;
            }
        }

        'outer: for epoch in start_epoch..self.cfg.epochs {
            deepod_tensor::failpoint::hit("train::epoch");
            opt.set_lr(schedule.lr_at(epoch));
            // State at the top of the epoch, *before* the shuffle: what a
            // mid-epoch checkpoint records so resume can re-shuffle.
            let epoch_rng_state = rng.state();
            // Shuffle sample order (Alg. 1 line 2).
            let mut order: Vec<usize> = (0..self.train_samples.len()).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let resuming_here = epoch == start_epoch;
            let skip = if resuming_here { resume_batches } else { 0 };
            let (mut epoch_loss, mut epoch_batches) = if resuming_here {
                carried_epoch_loss
            } else {
                (0.0f32, 0usize)
            };
            for (batch_idx, chunk) in order.chunks(bs).enumerate().skip(skip) {
                deepod_tensor::failpoint::hit("train::step");
                let (batch, mut grads) = self.batch_gradients(chunk, threads);
                grads.scale(1.0 / chunk.len() as f32);
                // One extra read-only pass over the gradients; the clip
                // below recomputes its own norm, so numerics are untouched.
                let grad_norm = grads.global_norm();
                if self.opts.clip_norm > 0.0 {
                    grads.clip_global_norm(self.opts.clip_norm);
                }
                opt.step(&mut self.model.store, &grads);
                step += 1;
                let batches_done = batch_idx + 1;
                let n = chunk.len() as f32;
                let step_loss = batch.loss / n;
                epoch_loss += step_loss;
                epoch_batches += 1;
                crate::obs::registry::counter_inc("train.steps");
                crate::obs::registry::observe("train.grad_norm", f64::from(grad_norm));
                crate::obs::registry::gauge_set("train.loss_last", f64::from(step_loss));
                crate::obs::registry::gauge_set("train.loss_main_last", f64::from(batch.main / n));
                crate::obs::registry::gauge_set("train.loss_aux_last", f64::from(batch.aux / n));
                crate::obs::debug(
                    "train",
                    "step",
                    &[
                        ("step", step.into()),
                        ("loss", step_loss.into()),
                        ("loss_main", (batch.main / n).into()),
                        ("loss_aux", (batch.aux / n).into()),
                        ("grad_norm", grad_norm.into()),
                    ],
                );

                let eval_now =
                    self.opts.eval_every > 0 && step.is_multiple_of(self.opts.eval_every);
                if eval_now {
                    let mae = self.validation_mae();
                    curve.push(CurvePoint {
                        step,
                        val_mae: mae,
                        elapsed_s: elapsed_offset + start.elapsed().as_secs_f64(),
                    });
                    crate::obs::registry::counter_inc("train.evals");
                    crate::obs::registry::series_push("train.val_mae", step as u64, f64::from(mae));
                    crate::obs::registry::gauge_set("train.val_mae_last", f64::from(mae));
                    crate::obs::info(
                        "train",
                        "validation",
                        &[("step", step.into()), ("val_mae_s", mae.into())],
                    );
                    if mae < best {
                        best = mae;
                        since_best = 0;
                        best_store = self.model.store.clone();
                    } else {
                        since_best += 1;
                        if self.opts.patience > 0 && since_best >= self.opts.patience {
                            break 'outer;
                        }
                    }
                }

                if let Some(every) = checkpoint_every {
                    if every > 0 && step.is_multiple_of(every) {
                        save(&TrainingCheckpoint {
                            version: CHECKPOINT_VERSION,
                            model: self.model.clone(),
                            best_store: best_store.clone(),
                            optimizer: opt.snapshot(),
                            progress: TrainProgress {
                                epoch,
                                batches_done,
                                step,
                                rng_state: epoch_rng_state,
                                curve: curve.clone(),
                                best_val_mae: best,
                                since_best,
                                final_train_loss,
                                epoch_loss,
                                epoch_batches,
                                elapsed_s: elapsed_offset + start.elapsed().as_secs_f64(),
                                threads,
                            },
                        })?;
                    }
                }
            }
            final_train_loss = epoch_loss / epoch_batches.max(1) as f32;
            // Per-epoch evaluation point.
            let mae = self.validation_mae();
            curve.push(CurvePoint {
                step,
                val_mae: mae,
                elapsed_s: elapsed_offset + start.elapsed().as_secs_f64(),
            });
            if mae < best {
                best = mae;
                best_store = self.model.store.clone();
            }
            crate::obs::registry::counter_inc("train.epochs");
            crate::obs::registry::series_push(
                "train.epoch_loss",
                epoch as u64,
                f64::from(final_train_loss),
            );
            crate::obs::registry::series_push("train.val_mae", step as u64, f64::from(mae));
            crate::obs::registry::gauge_set("train.val_mae_last", f64::from(mae));
            crate::obs::registry::gauge_set("train.best_val_mae", f64::from(best));
            crate::obs::info(
                "train",
                "epoch complete",
                &[
                    ("epoch", epoch.into()),
                    ("train_loss", final_train_loss.into()),
                    ("val_mae_s", mae.into()),
                    ("best_val_mae_s", best.into()),
                ],
            );

            // Epoch-boundary checkpoint: `batches_done = 0` and the RNG
            // state as it stands now, which *is* the start-of-next-epoch
            // state (the next iteration shuffles from here).
            if checkpoint_every.is_some() {
                save(&TrainingCheckpoint {
                    version: CHECKPOINT_VERSION,
                    model: self.model.clone(),
                    best_store: best_store.clone(),
                    optimizer: opt.snapshot(),
                    progress: TrainProgress {
                        epoch: epoch + 1,
                        batches_done: 0,
                        step,
                        rng_state: rng.state(),
                        curve: curve.clone(),
                        best_val_mae: best,
                        since_best,
                        final_train_loss,
                        epoch_loss: 0.0,
                        epoch_batches: 0,
                        elapsed_s: elapsed_offset + start.elapsed().as_secs_f64(),
                        threads,
                    },
                })?;
            }
        }

        // Restore the best validation checkpoint (early-stopping model
        // selection; the paper fine-tunes on validation data, §6.1).
        self.model.store = best_store;

        // Convergence: first curve point within 2 % of the best (the best
        // point itself qualifies, so the search cannot come up empty; fall
        // back to a zero point for the degenerate empty curve).
        let threshold = best * 1.02;
        let conv = curve
            .iter()
            .find(|p| p.val_mae <= threshold)
            .or(curve.last())
            .copied()
            .unwrap_or(CurvePoint {
                step: 0,
                elapsed_s: 0.0,
                val_mae: best,
            });

        Ok(TrainReport {
            best_val_mae: best,
            convergence_step: conv.step,
            convergence_time_s: conv.elapsed_s,
            total_steps: step,
            total_time_s: elapsed_offset + start.elapsed().as_secs_f64(),
            final_train_loss,
            curve,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ablation::{EmbeddingInit, Variant};
    use deepod_roadnet::CityProfile;
    use deepod_traj::{DatasetBuilder, DatasetConfig};

    fn tiny_cfg() -> DeepOdConfig {
        DeepOdConfig {
            init: EmbeddingInit::Random,
            ds: 6,
            dt_dim: 6,
            d1m: 8,
            d2m: 6,
            d3m: 8,
            d4m: 6,
            d5m: 8,
            d6m: 6,
            d7m: 8,
            d9m: 8,
            dh: 8,
            dtraf: 4,
            epochs: 2,
            batch_size: 8,
            ..DeepOdConfig::default()
        }
    }

    #[test]
    fn training_reduces_validation_mae() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 150));
        let mut trainer = Trainer::new(&ds, tiny_cfg(), TrainOptions::default()).expect("trainer");
        let before = trainer.validation_mae();
        let report = trainer.train();
        assert!(report.best_val_mae.is_finite());
        assert!(
            report.best_val_mae <= before,
            "training should not worsen MAE: {before} -> {}",
            report.best_val_mae
        );
        assert!(report.total_steps > 0);
        assert!(!report.curve.is_empty());
        // Curve steps monotone.
        for w in report.curve.windows(2) {
            assert!(w[0].step <= w[1].step);
        }
        assert!(report.convergence_step <= report.total_steps);
    }

    #[test]
    fn nst_trains_too() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 80));
        let mut cfg = tiny_cfg();
        cfg.variant = Variant::NoTrajectory;
        cfg.epochs = 1;
        let mut trainer = Trainer::new(&ds, cfg, TrainOptions::default()).expect("trainer");
        let report = trainer.train();
        assert!(report.best_val_mae.is_finite());
    }

    #[test]
    fn early_stopping_respects_patience() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 60));
        let mut cfg = tiny_cfg();
        cfg.epochs = 50; // would be huge without early stop
        let opts = TrainOptions {
            eval_every: 2,
            patience: 3,
            ..Default::default()
        };
        let mut trainer = Trainer::new(&ds, cfg, opts).expect("trainer");
        let report = trainer.train();
        // Early stopping must have cut the run far short of 50 epochs.
        let steps_per_epoch = ds.train.len().div_ceil(8);
        assert!(
            report.total_steps < 50 * steps_per_epoch,
            "ran {} steps",
            report.total_steps
        );
    }

    #[test]
    fn parallel_training_is_deterministic() {
        // Two runs with the same seed and the same thread count must
        // produce bit-identical loss curves: gradients are merged by a
        // deterministic tree reduction, losses summed in span order.
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 80));
        let run = |threads: usize| {
            let opts = TrainOptions {
                threads,
                ..Default::default()
            };
            let mut trainer = Trainer::new(&ds, tiny_cfg(), opts).expect("trainer");
            trainer.train()
        };
        for threads in [1, 2] {
            let a = run(threads);
            let b = run(threads);
            assert_eq!(a.curve.len(), b.curve.len(), "threads={threads}");
            for (pa, pb) in a.curve.iter().zip(&b.curve) {
                assert_eq!(pa.step, pb.step, "threads={threads}");
                assert_eq!(
                    pa.val_mae.to_bits(),
                    pb.val_mae.to_bits(),
                    "threads={threads} step {}: {} vs {}",
                    pa.step,
                    pa.val_mae,
                    pb.val_mae
                );
            }
            assert_eq!(a.final_train_loss.to_bits(), b.final_train_loss.to_bits());
        }
    }

    #[test]
    fn parallel_prediction_matches_serial() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 80));
        let mut cfg = tiny_cfg();
        cfg.epochs = 1;
        let mut trainer = Trainer::new(
            &ds,
            cfg,
            TrainOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .expect("trainer");
        trainer.train();
        let serial = trainer.predict_orders(&ds.test);
        let serial_mae = trainer.validation_mae();
        trainer.opts.threads = 3;
        let parallel = trainer.predict_orders(&ds.test);
        let parallel_mae = trainer.validation_mae();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.map(f32::to_bits), p.map(f32::to_bits));
        }
        // Individual predictions are bit-identical; the MAE sum is only
        // reassociated across spans, so it may differ in the last ulps.
        let tol = 1e-4 * serial_mae.abs().max(1.0);
        assert!(
            (serial_mae - parallel_mae).abs() <= tol,
            "{serial_mae} vs {parallel_mae}"
        );
    }

    /// Bit-level equality of everything deterministic in two reports
    /// (wall-clock fields excluded by design).
    fn assert_reports_bit_equal(a: &TrainReport, b: &TrainReport) {
        assert_eq!(a.curve.len(), b.curve.len());
        for (pa, pb) in a.curve.iter().zip(&b.curve) {
            assert_eq!(pa.step, pb.step);
            assert_eq!(
                pa.val_mae.to_bits(),
                pb.val_mae.to_bits(),
                "step {}: {} vs {}",
                pa.step,
                pa.val_mae,
                pb.val_mae
            );
        }
        assert_eq!(a.best_val_mae.to_bits(), b.best_val_mae.to_bits());
        assert_eq!(a.final_train_loss.to_bits(), b.final_train_loss.to_bits());
        assert_eq!(a.total_steps, b.total_steps);
        assert_eq!(a.convergence_step, b.convergence_step);
    }

    #[test]
    fn resume_from_any_checkpoint_matches_uninterrupted() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 80));
        let opts = || TrainOptions {
            threads: 1,
            eval_every: 3,
            ..Default::default()
        };

        let baseline = Trainer::new(&ds, tiny_cfg(), opts())
            .expect("trainer")
            .train();

        // An identical run that also *writes* checkpoints must not drift:
        // collect every snapshot it would persist.
        let mut ckpts: Vec<TrainingCheckpoint> = Vec::new();
        let mut collector = Trainer::new(&ds, tiny_cfg(), opts()).expect("trainer");
        let with_ckpts: Result<TrainReport, std::convert::Infallible> =
            collector.train_driver(Some(2), |c| {
                ckpts.push(c.clone());
                Ok(())
            });
        let with_ckpts = match with_ckpts {
            Ok(r) => r,
            Err(e) => match e {},
        };
        assert_reports_bit_equal(&baseline, &with_ckpts);

        // Resume from one mid-epoch and one epoch-boundary checkpoint;
        // both must reproduce the uninterrupted run exactly.
        let mid = ckpts
            .iter()
            .find(|c| c.progress.batches_done > 0)
            .expect("a mid-epoch checkpoint");
        let boundary = ckpts
            .iter()
            .find(|c| c.progress.batches_done == 0 && c.progress.epoch < tiny_cfg().epochs)
            .expect("an epoch-boundary checkpoint");
        for (label, ckpt) in [("mid-epoch", mid), ("epoch-boundary", boundary)] {
            let mut resumed = Trainer::new(&ds, tiny_cfg(), opts()).expect("trainer");
            resumed
                .resume_from(ckpt.clone())
                .expect("matching config and threads");
            let report = resumed.train();
            assert_eq!(
                baseline.curve.len(),
                report.curve.len(),
                "{label}: curve length"
            );
            assert_reports_bit_equal(&baseline, &report);
        }
    }

    #[test]
    fn resume_rejects_mismatched_config_or_threads() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 60));
        let opts = || TrainOptions {
            threads: 1,
            ..Default::default()
        };
        let mut ckpts: Vec<TrainingCheckpoint> = Vec::new();
        let mut t = Trainer::new(&ds, tiny_cfg(), opts()).expect("trainer");
        let _: Result<TrainReport, std::convert::Infallible> = t.train_driver(Some(0), |c| {
            ckpts.push(c.clone());
            Ok(())
        });
        let ckpt = ckpts.first().expect("boundary checkpoint").clone();

        let mut other_cfg = tiny_cfg();
        other_cfg.seed ^= 1;
        let mut t2 = Trainer::new(&ds, other_cfg, opts()).expect("trainer");
        assert!(matches!(
            t2.resume_from(ckpt.clone()),
            Err(ModelError::InvalidConfig(_))
        ));

        let mut t3 = Trainer::new(
            &ds,
            tiny_cfg(),
            TrainOptions {
                threads: 7,
                ..Default::default()
            },
        )
        .expect("trainer");
        assert!(matches!(
            t3.resume_from(ckpt),
            Err(ModelError::InvalidConfig(_))
        ));
    }

    #[test]
    fn estimation_after_training_tracks_labels() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 150));
        let mut trainer = Trainer::new(&ds, tiny_cfg(), TrainOptions::default()).expect("trainer");
        trainer.train();
        // MAE on test data should beat a degenerate "predict zero" baseline
        // by a wide margin (i.e. be well under the mean travel time).
        let mean_y = ds.mean_train_travel_time() as f32;
        let preds = trainer.predict_orders(&ds.test);
        let mut mae = 0.0f32;
        let mut n = 0;
        for (p, o) in preds.iter().zip(&ds.test) {
            if let Some(p) = p {
                mae += (p - o.travel_time as f32).abs();
                n += 1;
            }
        }
        assert!(n > 0);
        mae /= n as f32;
        assert!(
            mae < mean_y,
            "test MAE {mae} should beat predict-zero ({mean_y})"
        );
    }
}

//! The training loop of Alg. 1: minibatch SGD with Adam, the combined
//! `w·auxiliary + (1−w)·main` loss, the paper's LR schedule (0.01, ÷5
//! every 2 epochs), per-step validation tracking (Fig. 10), and
//! convergence accounting (Table 3).

use crate::config::DeepOdConfig;
use crate::features::{EncodedSample, FeatureContext};
use crate::model::{DeepOdModel, ModelError};
use deepod_nn::{AdamOptimizer, Gradients, LrSchedule};
use deepod_roadnet::RoadNetwork;
use deepod_traj::CityDataset;
use rand::Rng;
use serde::{Deserialize, Serialize};
// Wall clocks time the *report*, never the computation: loss curves and
// model selection depend only on (seed, thread count). deepod-lint's
// nondeterminism rule is relaxed for exactly these two call sites.
// deepod-lint: allow(nondeterminism)
use std::time::Instant;

/// Training-loop options independent of the model config.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainOptions {
    /// Evaluate validation MAE every `eval_every` steps (0 = per epoch).
    pub eval_every: usize,
    /// Cap on validation samples per evaluation (keeps Fig. 10-style
    /// curves cheap).
    pub max_eval_samples: usize,
    /// Stop early when validation MAE hasn't improved for this many
    /// evaluations (0 = never).
    pub patience: usize,
    /// Gradient clipping threshold (global norm, 0 = off).
    pub clip_norm: f32,
    /// Decoupled weight decay (AdamW); regularizes against the overfitting
    /// that small synthetic datasets invite.
    pub weight_decay: f32,
    /// Worker threads for minibatch gradients, validation and batch
    /// prediction. `0` resolves to `DEEPOD_THREADS` (or the machine's
    /// available parallelism). `1` runs the exact serial path.
    pub threads: usize,
    /// Print progress lines to stderr.
    pub verbose: bool,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            eval_every: 50,
            max_eval_samples: 256,
            patience: 0,
            clip_norm: 5.0,
            weight_decay: 1e-3,
            threads: 0,
            verbose: false,
        }
    }
}

/// One point of the training curve.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Optimizer steps so far.
    pub step: usize,
    /// Validation MAE in seconds.
    pub val_mae: f32,
    /// Wall-clock seconds since training started.
    pub elapsed_s: f64,
}

/// Result of a training run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainReport {
    /// Validation-MAE curve (Fig. 10).
    pub curve: Vec<CurvePoint>,
    /// Best validation MAE observed.
    pub best_val_mae: f32,
    /// Step at which the run is considered converged (first step whose
    /// validation MAE is within 2 % of the final best — Table 3's
    /// "convergence steps").
    pub convergence_step: usize,
    /// Wall-clock seconds at the convergence step.
    pub convergence_time_s: f64,
    /// Total optimizer steps executed.
    pub total_steps: usize,
    /// Total wall-clock training seconds.
    pub total_time_s: f64,
    /// Mean training loss of the final epoch.
    pub final_train_loss: f32,
}

/// Drives training of a [`DeepOdModel`] on a [`CityDataset`].
pub struct Trainer<'a> {
    ds: &'a CityDataset,
    ctx: FeatureContext,
    model: DeepOdModel,
    cfg: DeepOdConfig,
    opts: TrainOptions,
    train_samples: Vec<EncodedSample>,
    val_samples: Vec<EncodedSample>,
}

impl<'a> Trainer<'a> {
    /// Builds the feature context, encodes the train/validation splits and
    /// initializes the model.
    pub fn new(
        ds: &'a CityDataset,
        cfg: DeepOdConfig,
        opts: TrainOptions,
    ) -> Result<Self, ModelError> {
        let ctx = FeatureContext::build(ds, cfg.slot_seconds);
        let model = DeepOdModel::new(&cfg, ds, &ctx)?;
        let train_samples = ctx.encode_orders(&ds.net, &ds.train);
        let val_samples = ctx.encode_orders(&ds.net, &ds.validation);
        if train_samples.is_empty() {
            return Err(ModelError::InvalidConfig(
                "no encodable training samples in the dataset".into(),
            ));
        }
        Ok(Trainer {
            ds,
            ctx,
            model,
            cfg,
            opts,
            train_samples,
            val_samples,
        })
    }

    /// The trained (or in-training) model.
    pub fn model(&mut self) -> &mut DeepOdModel {
        &mut self.model
    }

    /// Consumes the trainer, returning the model.
    pub fn into_model(self) -> DeepOdModel {
        self.model
    }

    /// The feature context + network pair needed for estimation calls.
    pub fn context(&self) -> (&FeatureContext, &RoadNetwork) {
        (&self.ctx, &self.ds.net)
    }

    /// Encoded validation samples (used by evaluation code).
    pub fn validation_samples(&self) -> &[EncodedSample] {
        &self.val_samples
    }

    /// Worker-thread count for gradient/eval fan-out (resolved from the
    /// options, `DEEPOD_THREADS`, or the machine).
    fn threads(&self) -> usize {
        deepod_tensor::parallel::resolve_threads(self.opts.threads)
    }

    /// Predicts travel times for a batch of orders with the current model
    /// (splits the context/model borrows internally). With more than one
    /// worker thread each span of orders runs on its own model clone;
    /// spans are contiguous and re-concatenated in order, so the output is
    /// identical for every thread count.
    pub fn predict_orders(&mut self, orders: &[deepod_traj::TaxiOrder]) -> Vec<Option<f32>> {
        let ctx = &self.ctx;
        let net = &self.ds.net;
        let t = self.threads().min(orders.len()).max(1);
        if t == 1 {
            let model = &mut self.model;
            return orders
                .iter()
                .map(|o| model.estimate(ctx, net, &o.od))
                .collect();
        }
        let model = &self.model;
        deepod_tensor::parallel::map_ranges(orders.len(), t, |span| {
            let mut local = model.clone();
            orders[span]
                .iter()
                .map(|o| local.estimate(ctx, net, &o.od))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Predicts the travel time for one raw OD input.
    pub fn predict_od(&mut self, od: &deepod_traj::OdInput) -> Option<f32> {
        let ctx = &self.ctx;
        let net = &self.ds.net;
        self.model.estimate(ctx, net, od)
    }

    /// Encoded training samples.
    pub fn train_samples(&self) -> &[EncodedSample] {
        &self.train_samples
    }

    /// Validation MAE of the current model over (a capped number of)
    /// validation samples.
    pub fn validation_mae(&mut self) -> f32 {
        let n = self
            .val_samples
            .len()
            .min(self.opts.max_eval_samples.max(1));
        if n == 0 {
            return f32::NAN;
        }
        let t = self.threads().min(n).max(1);
        if t == 1 {
            let mut acc = 0.0f32;
            for s in &self.val_samples[..n] {
                let pred = self.model.estimate_encoded(&s.od);
                acc += (pred - s.travel_time).abs();
            }
            return acc / n as f32;
        }
        // Per-span partial sums, added back in span order: the total is a
        // fixed left-to-right sum over spans, deterministic per thread
        // count.
        let model = &self.model;
        let samples = &self.val_samples;
        let sums = deepod_tensor::parallel::map_ranges(n, t, |span| {
            let mut local = model.clone();
            let mut acc = 0.0f32;
            for s in &samples[span] {
                let pred = local.estimate_encoded(&s.od);
                acc += (pred - s.travel_time).abs();
            }
            acc
        });
        sums.into_iter().fold(0.0f32, |a, b| a + b) / n as f32
    }

    /// Summed loss and merged gradients for one minibatch.
    ///
    /// `threads == 1` runs the literal serial loop on the live model —
    /// bit-identical to the pre-parallel trainer. With more threads the
    /// batch is split into contiguous spans, each processed on a clone of
    /// the model (copy-on-write parameter store, so cloning is cheap);
    /// per-span losses are summed in span order and per-span gradients
    /// merged by a deterministic adjacent-pair tree reduction, making the
    /// result a pure function of (batch, thread count) — never of thread
    /// scheduling. Batch-norm running statistics accumulated by the
    /// workers are averaged back into the live model weighted by span
    /// length.
    fn batch_gradients(&mut self, chunk: &[usize], threads: usize) -> (f32, Gradients) {
        let t = threads.min(chunk.len()).max(1);
        if t == 1 {
            let mut grads = Gradients::new();
            let mut batch_loss = 0.0f32;
            for &idx in chunk {
                let sample = self.train_samples[idx].clone();
                let (l, g) = self.model.sample_gradients(&sample);
                batch_loss += l;
                grads.merge(g);
            }
            return (batch_loss, grads);
        }

        let model = &self.model;
        let samples = &self.train_samples;
        let results = deepod_tensor::parallel::map_ranges(chunk.len(), t, |span| {
            let mut local = model.clone();
            let mut grads = Gradients::new();
            let mut loss = 0.0f32;
            let len = span.len();
            for &idx in &chunk[span] {
                let sample = samples[idx].clone();
                let (l, g) = local.sample_gradients(&sample);
                loss += l;
                grads.merge(g);
            }
            (len, loss, grads, local)
        });

        let total = chunk.len() as f32;
        let mut batch_loss = 0.0f32;
        let mut grad_parts = Vec::with_capacity(results.len());
        let mut bn_workers = Vec::with_capacity(results.len());
        for (len, loss, grads, local) in results {
            batch_loss += loss;
            grad_parts.push(grads);
            bn_workers.push((len as f32 / total, local));
        }
        self.model.merge_bn_stats(&bn_workers);
        let grads = deepod_tensor::parallel::tree_reduce(grad_parts, |mut a, b| {
            a.merge(b);
            a
        })
        .unwrap_or_default();
        (batch_loss, grads)
    }

    /// Runs Alg. 1's `ModelTrain` for the configured number of epochs and
    /// returns the training report.
    pub fn train(&mut self) -> TrainReport {
        // The paper divides the LR by 5 every 2 epochs — with millions of
        // trips per epoch. At laptop scale an epoch is a few dozen steps,
        // so we scale the decay interval with the run length (÷5 happens
        // at the same *fraction* of training, ~2-3 times per run).
        let schedule = LrSchedule::StepDecay {
            base: self.cfg.lr,
            divisor: 5.0,
            every_epochs: 2usize.max(self.cfg.epochs.div_ceil(4)),
        };
        let mut opt = AdamOptimizer::new(self.cfg.lr);
        opt.set_weight_decay(self.opts.weight_decay);
        let mut rng = deepod_tensor::rng_from_seed(self.cfg.seed ^ 0x7124);

        // deepod-lint: allow(nondeterminism) — report timing only
        let start = Instant::now();
        let mut curve = Vec::new();
        let mut step = 0usize;
        let mut best = f32::INFINITY;
        let mut since_best = 0usize;
        let mut final_train_loss = 0.0f32;
        let bs = self.cfg.batch_size.max(1);
        let threads = self.threads();

        // Initial point so curves start at the untrained model.
        let mae0 = self.validation_mae();
        best = best.min(mae0);
        curve.push(CurvePoint {
            step: 0,
            val_mae: mae0,
            elapsed_s: 0.0,
        });
        // Best-checkpoint snapshot (shallow Rc clones; copy-on-write keeps
        // it intact while the optimizer updates the live store).
        let mut best_store = self.model.store.clone();

        'outer: for epoch in 0..self.cfg.epochs {
            opt.set_lr(schedule.lr_at(epoch));
            // Shuffle sample order (Alg. 1 line 2).
            let mut order: Vec<usize> = (0..self.train_samples.len()).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let mut epoch_loss = 0.0f32;
            let mut epoch_batches = 0usize;

            for chunk in order.chunks(bs) {
                let (batch_loss, mut grads) = self.batch_gradients(chunk, threads);
                grads.scale(1.0 / chunk.len() as f32);
                if self.opts.clip_norm > 0.0 {
                    grads.clip_global_norm(self.opts.clip_norm);
                }
                opt.step(&mut self.model.store, &grads);
                step += 1;
                epoch_loss += batch_loss / chunk.len() as f32;
                epoch_batches += 1;

                let eval_now =
                    self.opts.eval_every > 0 && step.is_multiple_of(self.opts.eval_every);
                if eval_now {
                    let mae = self.validation_mae();
                    curve.push(CurvePoint {
                        step,
                        val_mae: mae,
                        elapsed_s: start.elapsed().as_secs_f64(),
                    });
                    if self.opts.verbose {
                        eprintln!("step {step}: val MAE {mae:.1}s");
                    }
                    if mae < best {
                        best = mae;
                        since_best = 0;
                        best_store = self.model.store.clone();
                    } else {
                        since_best += 1;
                        if self.opts.patience > 0 && since_best >= self.opts.patience {
                            break 'outer;
                        }
                    }
                }
            }
            final_train_loss = epoch_loss / epoch_batches.max(1) as f32;
            // Per-epoch evaluation point.
            let mae = self.validation_mae();
            curve.push(CurvePoint {
                step,
                val_mae: mae,
                elapsed_s: start.elapsed().as_secs_f64(),
            });
            if mae < best {
                best = mae;
                best_store = self.model.store.clone();
            }
            if self.opts.verbose {
                eprintln!("epoch {epoch}: train loss {final_train_loss:.2}, val MAE {mae:.1}s");
            }
        }

        // Restore the best validation checkpoint (early-stopping model
        // selection; the paper fine-tunes on validation data, §6.1).
        self.model.store = best_store;

        // Convergence: first curve point within 2 % of the best (the best
        // point itself qualifies, so the search cannot come up empty; fall
        // back to a zero point for the degenerate empty curve).
        let threshold = best * 1.02;
        let conv = curve
            .iter()
            .find(|p| p.val_mae <= threshold)
            .or(curve.last())
            .copied()
            .unwrap_or(CurvePoint {
                step: 0,
                elapsed_s: 0.0,
                val_mae: best,
            });

        TrainReport {
            best_val_mae: best,
            convergence_step: conv.step,
            convergence_time_s: conv.elapsed_s,
            total_steps: step,
            total_time_s: start.elapsed().as_secs_f64(),
            final_train_loss,
            curve,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ablation::{EmbeddingInit, Variant};
    use deepod_roadnet::CityProfile;
    use deepod_traj::{DatasetBuilder, DatasetConfig};

    fn tiny_cfg() -> DeepOdConfig {
        DeepOdConfig {
            init: EmbeddingInit::Random,
            ds: 6,
            dt_dim: 6,
            d1m: 8,
            d2m: 6,
            d3m: 8,
            d4m: 6,
            d5m: 8,
            d6m: 6,
            d7m: 8,
            d9m: 8,
            dh: 8,
            dtraf: 4,
            epochs: 2,
            batch_size: 8,
            ..DeepOdConfig::default()
        }
    }

    #[test]
    fn training_reduces_validation_mae() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 150));
        let mut trainer = Trainer::new(&ds, tiny_cfg(), TrainOptions::default()).expect("trainer");
        let before = trainer.validation_mae();
        let report = trainer.train();
        assert!(report.best_val_mae.is_finite());
        assert!(
            report.best_val_mae <= before,
            "training should not worsen MAE: {before} -> {}",
            report.best_val_mae
        );
        assert!(report.total_steps > 0);
        assert!(!report.curve.is_empty());
        // Curve steps monotone.
        for w in report.curve.windows(2) {
            assert!(w[0].step <= w[1].step);
        }
        assert!(report.convergence_step <= report.total_steps);
    }

    #[test]
    fn nst_trains_too() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 80));
        let mut cfg = tiny_cfg();
        cfg.variant = Variant::NoTrajectory;
        cfg.epochs = 1;
        let mut trainer = Trainer::new(&ds, cfg, TrainOptions::default()).expect("trainer");
        let report = trainer.train();
        assert!(report.best_val_mae.is_finite());
    }

    #[test]
    fn early_stopping_respects_patience() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 60));
        let mut cfg = tiny_cfg();
        cfg.epochs = 50; // would be huge without early stop
        let opts = TrainOptions {
            eval_every: 2,
            patience: 3,
            ..Default::default()
        };
        let mut trainer = Trainer::new(&ds, cfg, opts).expect("trainer");
        let report = trainer.train();
        // Early stopping must have cut the run far short of 50 epochs.
        let steps_per_epoch = ds.train.len().div_ceil(8);
        assert!(
            report.total_steps < 50 * steps_per_epoch,
            "ran {} steps",
            report.total_steps
        );
    }

    #[test]
    fn parallel_training_is_deterministic() {
        // Two runs with the same seed and the same thread count must
        // produce bit-identical loss curves: gradients are merged by a
        // deterministic tree reduction, losses summed in span order.
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 80));
        let run = |threads: usize| {
            let opts = TrainOptions {
                threads,
                ..Default::default()
            };
            let mut trainer = Trainer::new(&ds, tiny_cfg(), opts).expect("trainer");
            trainer.train()
        };
        for threads in [1, 2] {
            let a = run(threads);
            let b = run(threads);
            assert_eq!(a.curve.len(), b.curve.len(), "threads={threads}");
            for (pa, pb) in a.curve.iter().zip(&b.curve) {
                assert_eq!(pa.step, pb.step, "threads={threads}");
                assert_eq!(
                    pa.val_mae.to_bits(),
                    pb.val_mae.to_bits(),
                    "threads={threads} step {}: {} vs {}",
                    pa.step,
                    pa.val_mae,
                    pb.val_mae
                );
            }
            assert_eq!(a.final_train_loss.to_bits(), b.final_train_loss.to_bits());
        }
    }

    #[test]
    fn parallel_prediction_matches_serial() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 80));
        let mut cfg = tiny_cfg();
        cfg.epochs = 1;
        let mut trainer = Trainer::new(
            &ds,
            cfg,
            TrainOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .expect("trainer");
        trainer.train();
        let serial = trainer.predict_orders(&ds.test);
        let serial_mae = trainer.validation_mae();
        trainer.opts.threads = 3;
        let parallel = trainer.predict_orders(&ds.test);
        let parallel_mae = trainer.validation_mae();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.map(f32::to_bits), p.map(f32::to_bits));
        }
        // Individual predictions are bit-identical; the MAE sum is only
        // reassociated across spans, so it may differ in the last ulps.
        let tol = 1e-4 * serial_mae.abs().max(1.0);
        assert!(
            (serial_mae - parallel_mae).abs() <= tol,
            "{serial_mae} vs {parallel_mae}"
        );
    }

    #[test]
    fn estimation_after_training_tracks_labels() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 150));
        let mut trainer = Trainer::new(&ds, tiny_cfg(), TrainOptions::default()).expect("trainer");
        trainer.train();
        // MAE on test data should beat a degenerate "predict zero" baseline
        // by a wide margin (i.e. be well under the mean travel time).
        let mean_y = ds.mean_train_travel_time() as f32;
        let preds = trainer.predict_orders(&ds.test);
        let mut mae = 0.0f32;
        let mut n = 0;
        for (p, o) in preds.iter().zip(&ds.test) {
            if let Some(p) = p {
                mae += (p - o.travel_time as f32).abs();
                n += 1;
            }
        }
        assert!(n > 0);
        mae /= n as f32;
        assert!(
            mae < mean_y,
            "test MAE {mae} should beat predict-zero ({mean_y})"
        );
    }
}

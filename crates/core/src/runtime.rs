//! Process-wide runtime configuration, resolved **once** at binary
//! startup (DESIGN.md §9).
//!
//! Historically each subsystem read its own environment variable at first
//! use (`DEEPOD_THREADS` in the tensor layer, `DEEPOD_LOG` /
//! `DEEPOD_LOG_FORMAT` in obs, `DEEPOD_FAILPOINTS` in the failpoint
//! registry, `DEEPOD_METRICS` in the CLI), which made configuration order
//! dependent on which module happened to initialize first. Now every knob
//! flows through one [`RuntimeConfig`]:
//!
//! * binaries call [`RuntimeConfig::resolve`] with their flag overrides
//!   and an environment lookup closure (precedence: flags > env >
//!   defaults), then [`RuntimeConfig::apply`] exactly once;
//! * library crates never read the environment — enforced by the
//!   deepod-lint rule `no-env-read-in-lib`.
//!
//! The environment is passed in as a closure rather than read here so the
//! *only* `std::env::var` tokens in the workspace live in `src/main.rs` /
//! `src/bin/` files, which the lint exempts.

use crate::obs::{self, Level, LogFormat};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide default worker-shard count for the serve engine, installed
/// by [`RuntimeConfig::apply`] from `DEEPOD_SERVE_WORKERS`. Zero means
/// "unset" — the CLI falls back to its own default (one worker).
static SERVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Process-wide default oracle artifact path for the serve cache tier,
/// installed from `DEEPOD_ORACLE`. `None` means "unset" — the CLI's
/// `--oracle` flag still wins.
static ORACLE_PATH: Mutex<Option<String>> = Mutex::new(None);

/// Process-wide default LRU capacity for the serve cache tier, installed
/// from `DEEPOD_CACHE_CAPACITY`. Zero means "unset/disabled".
static CACHE_CAPACITY: AtomicUsize = AtomicUsize::new(0);

/// Installs the process-wide serve worker-shard default (`0` = unset).
pub fn set_configured_serve_workers(n: usize) {
    SERVE_WORKERS.store(n, Ordering::Relaxed);
}

/// The serve worker-shard default installed by [`RuntimeConfig::apply`]
/// (`0` when `DEEPOD_SERVE_WORKERS` was absent or unparseable).
pub fn configured_serve_workers() -> usize {
    SERVE_WORKERS.load(Ordering::Relaxed)
}

/// Installs the process-wide serve oracle-path default (`None` = unset).
pub fn set_configured_oracle_path(path: Option<String>) {
    let mut slot = ORACLE_PATH.lock().unwrap_or_else(|p| p.into_inner());
    *slot = path;
}

/// The serve oracle-path default installed by [`RuntimeConfig::apply`]
/// (`None` when `DEEPOD_ORACLE` was absent or empty).
pub fn configured_oracle_path() -> Option<String> {
    ORACLE_PATH
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clone()
}

/// Installs the process-wide serve cache-capacity default (`0` = unset).
pub fn set_configured_cache_capacity(n: usize) {
    CACHE_CAPACITY.store(n, Ordering::Relaxed);
}

/// The serve cache-capacity default installed by [`RuntimeConfig::apply`]
/// (`0` when `DEEPOD_CACHE_CAPACITY` was absent or unparseable).
pub fn configured_cache_capacity() -> usize {
    CACHE_CAPACITY.load(Ordering::Relaxed)
}

/// Flag-level overrides a binary resolved from its own argument list.
/// Anything left `None` falls back to the environment, then defaults.
#[derive(Clone, Debug, Default)]
pub struct RuntimeOverrides {
    /// `--log-format {text,json}` (validated by the caller; an invalid
    /// flag value is a CLI usage error, not a silent fallback).
    pub log_format: Option<LogFormat>,
    /// `--metrics FILE`: flush the metrics registry here at exit.
    pub metrics_path: Option<String>,
}

/// The fully resolved process configuration. Construct via
/// [`RuntimeConfig::resolve`]; install via [`RuntimeConfig::apply`].
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Worker-thread count for data-parallel sections (`0` = machine
    /// default). From `DEEPOD_THREADS`.
    pub threads: usize,
    /// Event-level gate: `None` = keep the default (`warn`, widenable by
    /// `--verbose`); `Some(None)` = explicitly off; `Some(Some(l))` =
    /// explicit threshold. From `DEEPOD_LOG`.
    pub log_level: Option<Option<Level>>,
    /// Event wire format, when either a flag or `DEEPOD_LOG_FORMAT` chose
    /// one.
    pub log_format: Option<LogFormat>,
    /// Where to flush the metrics registry at exit (flag or
    /// `DEEPOD_METRICS`). The binary owns the actual flush so it can run
    /// after command dispatch, even on failure.
    pub metrics_path: Option<String>,
    /// Raw fault-injection spec from `DEEPOD_FAILPOINTS`; armed by
    /// [`RuntimeConfig::apply`], which surfaces malformed entries as
    /// [`RuntimeError::BadFailpoints`].
    pub failpoints: Option<String>,
    /// Default worker-shard count for the serve engine (`0` = unset, the
    /// CLI's `--workers` flag still wins). From `DEEPOD_SERVE_WORKERS`.
    pub serve_workers: usize,
    /// Default oracle artifact path for the serve cache tier (`None` =
    /// unset, `--oracle` still wins). From `DEEPOD_ORACLE`.
    pub oracle_path: Option<String>,
    /// Default LRU capacity for the serve cache tier (`0` = unset,
    /// `--cache-capacity` still wins). From `DEEPOD_CACHE_CAPACITY`.
    pub cache_capacity: usize,
    /// An unrecognized `DEEPOD_LOG` value, kept so [`RuntimeConfig::apply`]
    /// can warn about it *after* the log pipeline is up. A typo'd level is
    /// not worth killing a training run over, but must not pass silently.
    bad_log_value: Option<String>,
}

/// Why applying a [`RuntimeConfig`] failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// `DEEPOD_FAILPOINTS` contained a malformed entry; the payload is the
    /// parser's explanation. Binaries turn this into an abort with
    /// [`deepod_tensor::failpoint::CONFIG_EXIT_CODE`] — fault injection
    /// that silently fails to arm would make crash tests pass vacuously.
    BadFailpoints(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::BadFailpoints(why) => {
                write!(f, "malformed DEEPOD_FAILPOINTS entry: {why}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

impl RuntimeConfig {
    /// Resolves flags, environment, and defaults into one config. `env` is
    /// the caller's environment lookup (typically
    /// `|k| std::env::var(k).ok()` from a binary).
    pub fn resolve(
        overrides: RuntimeOverrides,
        env: impl Fn(&str) -> Option<String>,
    ) -> RuntimeConfig {
        let threads = env("DEEPOD_THREADS")
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(0);
        let mut bad_log_value = None;
        let log_level = match env("DEEPOD_LOG") {
            Some(raw) => match Level::parse(&raw) {
                Some(choice) => Some(choice),
                None => {
                    bad_log_value = Some(raw);
                    None
                }
            },
            None => None,
        };
        let log_format = overrides
            .log_format
            .or_else(|| env("DEEPOD_LOG_FORMAT").and_then(|v| LogFormat::parse(&v)));
        let metrics_path = overrides
            .metrics_path
            .or_else(|| env("DEEPOD_METRICS").filter(|s| !s.is_empty()));
        let failpoints = env("DEEPOD_FAILPOINTS").filter(|s| !s.trim().is_empty());
        let serve_workers = env("DEEPOD_SERVE_WORKERS")
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(0);
        let oracle_path = env("DEEPOD_ORACLE").filter(|s| !s.trim().is_empty());
        let cache_capacity = env("DEEPOD_CACHE_CAPACITY")
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0);
        RuntimeConfig {
            threads,
            log_level,
            log_format,
            metrics_path,
            failpoints,
            serve_workers,
            oracle_path,
            cache_capacity,
            bad_log_value,
        }
    }

    /// Installs the configuration process-wide: observability format and
    /// level gate, the parallel worker-thread count, eager registration of
    /// always-present metrics keys, and the fault-injection registry.
    /// Call once, before dispatching any real work.
    pub fn apply(&self) -> Result<(), RuntimeError> {
        obs::ensure_init();
        if let Some(format) = self.log_format {
            obs::set_format(format);
        }
        if let Some(choice) = self.log_level {
            obs::set_max_level(choice);
        }
        if let Some(raw) = &self.bad_log_value {
            obs::warn(
                "obs",
                "unrecognized DEEPOD_LOG value; defaulting to warn",
                &[("value", raw.as_str().into())],
            );
        }
        deepod_tensor::parallel::set_configured_threads(self.threads);
        set_configured_serve_workers(self.serve_workers);
        set_configured_oracle_path(self.oracle_path.clone());
        set_configured_cache_capacity(self.cache_capacity);
        // Materialize the metric keys every run must report (even at zero)
        // so snapshot key sets are comparable across runs.
        crate::io_guard::register_metrics();
        crate::checkpoint::register_metrics();
        crate::train::register_metrics();
        crate::timeslot::register_metrics();
        obs::register_parallel_metrics();
        if let Some(spec) = &self.failpoints {
            deepod_tensor::failpoint::arm(spec).map_err(RuntimeError::BadFailpoints)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_of<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |key| {
            pairs
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| (*v).to_string())
        }
    }

    #[test]
    fn defaults_when_environment_is_empty() {
        let cfg = RuntimeConfig::resolve(RuntimeOverrides::default(), |_| None);
        assert_eq!(cfg.threads, 0);
        assert_eq!(cfg.log_level, None);
        assert_eq!(cfg.log_format, None);
        assert_eq!(cfg.metrics_path, None);
        assert_eq!(cfg.failpoints, None);
        assert_eq!(cfg.serve_workers, 0);
        assert_eq!(cfg.oracle_path, None);
        assert_eq!(cfg.cache_capacity, 0);
        assert_eq!(cfg.bad_log_value, None);
    }

    #[test]
    fn environment_values_are_parsed() {
        let env = env_of(&[
            ("DEEPOD_THREADS", "4"),
            ("DEEPOD_LOG", "off"),
            ("DEEPOD_LOG_FORMAT", "json"),
            ("DEEPOD_METRICS", "m.json"),
            ("DEEPOD_FAILPOINTS", "train::epoch:1"),
            ("DEEPOD_SERVE_WORKERS", "4"),
            ("DEEPOD_ORACLE", "oracle.json"),
            ("DEEPOD_CACHE_CAPACITY", "512"),
        ]);
        let cfg = RuntimeConfig::resolve(RuntimeOverrides::default(), env);
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.log_level, Some(None), "off is an explicit choice");
        assert_eq!(cfg.log_format, Some(LogFormat::Json));
        assert_eq!(cfg.metrics_path.as_deref(), Some("m.json"));
        assert_eq!(cfg.failpoints.as_deref(), Some("train::epoch:1"));
        assert_eq!(cfg.serve_workers, 4);
        assert_eq!(cfg.oracle_path.as_deref(), Some("oracle.json"));
        assert_eq!(cfg.cache_capacity, 512);
    }

    #[test]
    fn flags_beat_environment() {
        let env = env_of(&[
            ("DEEPOD_LOG_FORMAT", "json"),
            ("DEEPOD_METRICS", "env.json"),
        ]);
        let overrides = RuntimeOverrides {
            log_format: Some(LogFormat::Text),
            metrics_path: Some("flag.json".to_string()),
        };
        let cfg = RuntimeConfig::resolve(overrides, env);
        assert_eq!(cfg.log_format, Some(LogFormat::Text));
        assert_eq!(cfg.metrics_path.as_deref(), Some("flag.json"));
    }

    #[test]
    fn bad_values_degrade_instead_of_overriding() {
        let env = env_of(&[
            ("DEEPOD_THREADS", "zero"),
            ("DEEPOD_LOG", "loud"),
            ("DEEPOD_METRICS", ""),
            ("DEEPOD_SERVE_WORKERS", "lots"),
            ("DEEPOD_ORACLE", "  "),
            ("DEEPOD_CACHE_CAPACITY", "many"),
        ]);
        let cfg = RuntimeConfig::resolve(RuntimeOverrides::default(), env);
        assert_eq!(cfg.threads, 0, "unparseable thread count keeps default");
        assert_eq!(cfg.serve_workers, 0, "unparseable worker count stays unset");
        assert_eq!(cfg.oracle_path, None, "blank oracle path is unset");
        assert_eq!(cfg.cache_capacity, 0, "unparseable capacity stays unset");
        assert_eq!(cfg.log_level, None, "bad level keeps the default gate");
        assert_eq!(cfg.bad_log_value.as_deref(), Some("loud"));
        assert_eq!(cfg.metrics_path, None, "empty metrics path is unset");
    }
}

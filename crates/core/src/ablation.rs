//! Model variants and embedding-initialization choices for the paper's
//! ablation studies (Table 4's N-* rows and Table 7's T-*/R-one rows).

use serde::{Deserialize, Serialize};

/// Structural model variants (§6.4.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Variant {
    /// The full DeepOD model.
    Full,
    /// N-st: the trajectory encoding (and hence the auxiliary loss) is
    /// removed — training reduces to the main MAE loss on M_O + M_E.
    NoTrajectory,
    /// N-sp: the spatial (road-segment) encoding is removed from the
    /// trajectory encoder; the LSTM sees only temporal representations.
    NoSpatialPath,
    /// N-tp: the temporal (time-interval) encoding is removed from the
    /// trajectory encoder; the LSTM sees only road-segment embeddings.
    NoTemporalPath,
    /// N-other: the external-feature encoding (weather + traffic matrix)
    /// is removed from the OD encoder.
    NoExternal,
}

impl Variant {
    /// Paper name for reports (Table 4).
    pub fn paper_name(self) -> &'static str {
        match self {
            Variant::Full => "DeepOD",
            Variant::NoTrajectory => "N-st",
            Variant::NoSpatialPath => "N-sp",
            Variant::NoTemporalPath => "N-tp",
            Variant::NoExternal => "N-other",
        }
    }

    /// Whether this variant trains the trajectory encoder at all.
    pub fn uses_trajectory(self) -> bool {
        self != Variant::NoTrajectory
    }

    /// Whether the trajectory encoder includes road-segment embeddings.
    pub fn traj_uses_spatial(self) -> bool {
        self != Variant::NoSpatialPath
    }

    /// Whether the trajectory encoder includes time-interval encodings.
    pub fn traj_uses_temporal(self) -> bool {
        self != Variant::NoTemporalPath
    }

    /// Whether the OD encoder includes external features.
    pub fn uses_external(self) -> bool {
        self != Variant::NoExternal
    }
}

/// Embedding-initialization strategies (§6.5, Table 7).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum EmbeddingInit {
    /// Paper default: node2vec on the line graph and the weekly temporal
    /// graph (Alg. 1 lines 1–4).
    Node2Vec,
    /// DeepWalk pre-training (evaluated in §5; slightly worse).
    DeepWalk,
    /// LINE pre-training.
    Line,
    /// T-one + R-one combined: both embedding matrices start from random
    /// (one-hot-equivalent) initialization, no graph pre-training.
    Random,
    /// T-one: random time-slot embeddings, node2vec road embeddings.
    TimeRandom,
    /// R-one: random road embeddings, node2vec time-slot embeddings.
    RoadRandom,
    /// T-day: temporal graph over one day only (daily periodicity only).
    TimeDayGraph,
    /// T-stamp: no time-slot embedding at all — raw timestamps fed as
    /// scalar features (the paper's worst variant).
    TimeStamp,
}

impl EmbeddingInit {
    /// Paper name for reports (Table 7).
    pub fn paper_name(self) -> &'static str {
        match self {
            EmbeddingInit::Node2Vec => "DeepOD",
            EmbeddingInit::DeepWalk => "DeepWalk-init",
            EmbeddingInit::Line => "LINE-init",
            EmbeddingInit::Random => "T-one+R-one",
            EmbeddingInit::TimeRandom => "T-one",
            EmbeddingInit::RoadRandom => "R-one",
            EmbeddingInit::TimeDayGraph => "T-day",
            EmbeddingInit::TimeStamp => "T-stamp",
        }
    }

    /// Whether time slots are embedded at all (false only for T-stamp).
    pub fn embeds_time(self) -> bool {
        self != EmbeddingInit::TimeStamp
    }

    /// Whether the time-slot table is pre-trained on a temporal graph.
    pub fn pretrains_time(self) -> bool {
        matches!(
            self,
            EmbeddingInit::Node2Vec
                | EmbeddingInit::DeepWalk
                | EmbeddingInit::Line
                | EmbeddingInit::RoadRandom
                | EmbeddingInit::TimeDayGraph
        )
    }

    /// Whether the road table is pre-trained on the line graph.
    pub fn pretrains_road(self) -> bool {
        matches!(
            self,
            EmbeddingInit::Node2Vec
                | EmbeddingInit::DeepWalk
                | EmbeddingInit::Line
                | EmbeddingInit::TimeRandom
                | EmbeddingInit::TimeDayGraph
                | EmbeddingInit::TimeStamp
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_flags() {
        assert!(Variant::Full.uses_trajectory());
        assert!(!Variant::NoTrajectory.uses_trajectory());
        assert!(!Variant::NoSpatialPath.traj_uses_spatial());
        assert!(Variant::NoSpatialPath.traj_uses_temporal());
        assert!(!Variant::NoTemporalPath.traj_uses_temporal());
        assert!(Variant::NoTemporalPath.traj_uses_spatial());
        assert!(!Variant::NoExternal.uses_external());
        assert!(Variant::Full.uses_external());
    }

    #[test]
    fn init_flags() {
        assert!(EmbeddingInit::Node2Vec.pretrains_time());
        assert!(EmbeddingInit::Node2Vec.pretrains_road());
        assert!(!EmbeddingInit::TimeRandom.pretrains_time());
        assert!(EmbeddingInit::TimeRandom.pretrains_road());
        assert!(EmbeddingInit::RoadRandom.pretrains_time());
        assert!(!EmbeddingInit::RoadRandom.pretrains_road());
        assert!(!EmbeddingInit::TimeStamp.embeds_time());
        assert!(!EmbeddingInit::Random.pretrains_time());
        assert!(!EmbeddingInit::Random.pretrains_road());
    }

    #[test]
    fn names_unique() {
        let names = [
            Variant::Full.paper_name(),
            Variant::NoTrajectory.paper_name(),
            Variant::NoSpatialPath.paper_name(),
            Variant::NoTemporalPath.paper_name(),
            Variant::NoExternal.paper_name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}

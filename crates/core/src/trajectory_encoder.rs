//! The Trajectory Encoder M_T of §4.4 (Fig. 7): each spatio-temporal step
//! `⟨e_i, [t_i[1], t_i[-1]]⟩` becomes the concatenation of its Time
//! Interval Encoder output `tcode_i` and its road-segment embedding
//! `D^s_i`; the resulting sequence runs through an LSTM (Eq. 12–16), whose
//! final state is concatenated with the position ratios `r[1], r[-1]` and
//! encoded by a two-layer MLP into `stcode` (Eq. 17).

use crate::ablation::Variant;
use crate::features::EncodedStep;
use crate::interval_encoder::TimeIntervalEncoder;
use deepod_nn::layers::{Embedding, LstmCell, Mlp2};
use deepod_nn::{Graph, ParamStore, VarId};
use deepod_tensor::Tensor;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// The trajectory encoder's parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrajectoryEncoder {
    /// Sequence model over per-step representations.
    pub lstm: LstmCell,
    /// Final MLP (d_h + 2 → d³_m → d⁴_m), producing stcode.
    pub mlp: Mlp2,
    /// Road-embedding width the encoder was built for.
    ds: usize,
    /// Interval-code width the encoder was built for.
    d2m: usize,
    /// Which parts of the per-step representation are active (ablations
    /// N-sp / N-tp).
    variant: Variant,
}

impl TrajectoryEncoder {
    /// Registers all parameters. The LSTM input width follows the active
    /// variant: `d2m + ds` for the full model, `d2m` for N-sp, `ds` for
    /// N-tp.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's module signature
    pub fn new(
        store: &mut ParamStore,
        ds: usize,
        d2m: usize,
        dh: usize,
        d3m: usize,
        d4m: usize,
        variant: Variant,
        rng: &mut StdRng,
    ) -> Self {
        let input_dim = match (variant.traj_uses_temporal(), variant.traj_uses_spatial()) {
            (true, true) => d2m + ds,
            (true, false) => d2m,
            (false, true) => ds,
            // No Variant disables both modalities (N-st drops the encoder
            // entirely), so this arm is unreachable by construction.
            (false, false) => unreachable!("trajectory encoder needs at least one modality"),
        };
        TrajectoryEncoder {
            lstm: LstmCell::new(store, "traj.lstm", input_dim, dh, rng),
            mlp: Mlp2::new(store, "traj.mlp", dh + 2, d3m, d4m, rng),
            ds,
            d2m,
            variant,
        }
    }

    /// Output width of stcode (= d⁴_m).
    pub fn out_dim(&self) -> usize {
        self.mlp.out_dim()
    }

    /// Encodes a trajectory into `stcode`.
    #[allow(clippy::too_many_arguments)]
    pub fn encode(
        &mut self,
        g: &mut Graph,
        store: &ParamStore,
        interval_enc: &mut TimeIntervalEncoder,
        road_emb: &Embedding,
        slot_emb: &Embedding,
        steps: &[EncodedStep],
        r_start: f32,
        r_end: f32,
        training: bool,
    ) -> VarId {
        assert!(!steps.is_empty(), "cannot encode an empty trajectory");
        let mut inputs = Vec::with_capacity(steps.len());
        for s in steps {
            let mut parts: Vec<VarId> = Vec::with_capacity(2);
            if self.variant.traj_uses_temporal() {
                let tcode = interval_enc.encode(
                    g,
                    store,
                    slot_emb,
                    &s.slot_nodes,
                    s.rem_enter,
                    s.rem_exit,
                    training,
                );
                debug_assert_eq!(g.value(tcode).numel(), self.d2m);
                parts.push(tcode);
            }
            if self.variant.traj_uses_spatial() {
                let demb = road_emb.lookup(g, store, s.edge);
                debug_assert_eq!(g.value(demb).numel(), self.ds);
                parts.push(demb);
            }
            let dst = if parts.len() == 1 {
                parts[0]
            } else {
                g.concat(&parts)
            };
            inputs.push(dst);
        }
        let hn = self.lstm.run_sequence(g, store, &inputs);
        let ratios = g.input(Tensor::from_vec(vec![r_start, r_end], &[2]));
        let z7 = g.concat(&[hn, ratios]);
        self.mlp.forward(g, store, z7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepod_tensor::rng_from_seed;

    fn setup(
        variant: Variant,
    ) -> (
        ParamStore,
        TrajectoryEncoder,
        TimeIntervalEncoder,
        Embedding,
        Embedding,
    ) {
        let mut rng = rng_from_seed(3);
        let mut store = ParamStore::new();
        let road = Embedding::new(&mut store, "roads", 40, 6, &mut rng);
        let slot = Embedding::new(&mut store, "slots", 60, 8, &mut rng);
        let tie = TimeIntervalEncoder::new(&mut store, 8, 16, 10, &mut rng);
        let traj = TrajectoryEncoder::new(&mut store, 6, 10, 12, 16, 8, variant, &mut rng);
        (store, traj, tie, road, slot)
    }

    fn steps() -> Vec<EncodedStep> {
        vec![
            EncodedStep {
                edge: 1,
                slot_nodes: vec![10],
                rem_enter: 0.1,
                rem_exit: 0.9,
            },
            EncodedStep {
                edge: 5,
                slot_nodes: vec![10, 11],
                rem_enter: 0.9,
                rem_exit: 0.2,
            },
            EncodedStep {
                edge: 9,
                slot_nodes: vec![11],
                rem_enter: 0.2,
                rem_exit: 0.6,
            },
        ]
    }

    #[test]
    fn stcode_shape_all_variants() {
        for v in [
            Variant::Full,
            Variant::NoSpatialPath,
            Variant::NoTemporalPath,
        ] {
            let (store, mut traj, mut tie, road, slot) = setup(v);
            let mut g = Graph::new();
            let code = traj.encode(
                &mut g,
                &store,
                &mut tie,
                &road,
                &slot,
                &steps(),
                0.3,
                0.6,
                false,
            );
            assert_eq!(g.value(code).dims(), &[8], "variant {v:?}");
            assert!(!g.value(code).has_non_finite());
        }
    }

    #[test]
    fn order_sensitivity() {
        // LSTMs are order-aware: reversing the step sequence must change
        // stcode.
        let (store, mut traj, mut tie, road, slot) = setup(Variant::Full);
        let fwd = steps();
        let mut rev = steps();
        rev.reverse();
        let mut g = Graph::new();
        let a = traj.encode(
            &mut g, &store, &mut tie, &road, &slot, &fwd, 0.3, 0.6, false,
        );
        let b = traj.encode(
            &mut g, &store, &mut tie, &road, &slot, &rev, 0.3, 0.6, false,
        );
        let (va, vb) = (g.value(a).as_slice(), g.value(b).as_slice());
        assert!(va.iter().zip(vb).any(|(x, y)| (x - y).abs() > 1e-7));
    }

    #[test]
    fn ratios_affect_stcode() {
        let (store, mut traj, mut tie, road, slot) = setup(Variant::Full);
        let mut g = Graph::new();
        let a = traj.encode(
            &mut g,
            &store,
            &mut tie,
            &road,
            &slot,
            &steps(),
            0.0,
            0.0,
            false,
        );
        let b = traj.encode(
            &mut g,
            &store,
            &mut tie,
            &road,
            &slot,
            &steps(),
            1.0,
            1.0,
            false,
        );
        assert_ne!(g.value(a).as_slice(), g.value(b).as_slice());
    }

    #[test]
    fn gradients_reach_embeddings_per_variant() {
        // Full: both tables. N-sp: only slots. N-tp: only roads.
        let cases = [
            (Variant::Full, true, true),
            (Variant::NoSpatialPath, false, true),
            (Variant::NoTemporalPath, true, false),
        ];
        for (v, want_road, want_slot) in cases {
            let (store, mut traj, mut tie, road, slot) = setup(v);
            let mut g = Graph::new();
            let code = traj.encode(
                &mut g,
                &store,
                &mut tie,
                &road,
                &slot,
                &steps(),
                0.5,
                0.5,
                true,
            );
            let s = g.sum_all(code);
            let grads = g.backward(s);
            assert_eq!(grads.get(road.table).is_some(), want_road, "roads, {v:?}");
            assert_eq!(grads.get(slot.table).is_some(), want_slot, "slots, {v:?}");
            assert!(grads.get(traj.lstm.wf).is_some());
            assert!(grads.get(traj.mlp.l2.w).is_some());
        }
    }

    #[test]
    fn single_step_trajectory_works() {
        let (store, mut traj, mut tie, road, slot) = setup(Variant::Full);
        let one = vec![EncodedStep {
            edge: 0,
            slot_nodes: vec![0],
            rem_enter: 0.0,
            rem_exit: 1.0,
        }];
        let mut g = Graph::new();
        let code = traj.encode(
            &mut g, &store, &mut tie, &road, &slot, &one, 0.0, 1.0, false,
        );
        assert_eq!(g.value(code).numel(), 8);
    }

    #[test]
    #[should_panic(expected = "empty trajectory")]
    fn empty_trajectory_panics() {
        let (store, mut traj, mut tie, road, slot) = setup(Variant::Full);
        let mut g = Graph::new();
        let _ = traj.encode(&mut g, &store, &mut tie, &road, &slot, &[], 0.0, 0.0, false);
    }
}

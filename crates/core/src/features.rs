//! Feature preparation: everything that turns a [`TaxiOrder`] / [`OdInput`]
//! into the index/scalar inputs the encoders consume.
//!
//! The [`FeatureContext`] owns the per-city state shared by all samples —
//! the spatial index for OD-point matching, the slot discretization, the
//! speed-matrix store (downsampled to a fixed CNN input resolution) — and
//! is reused between training and online estimation, mirroring the paper's
//! split between data preparation and model application.

use crate::timeslot::{TimeSlotError, TimeSlots};
use deepod_roadnet::{RoadNetwork, SpatialGrid};
use deepod_tensor::Tensor;
use deepod_traffic::{SpeedMatrixBuilder, SpeedMatrixStore, NUM_WEATHER_TYPES};
use deepod_traj::{CityDataset, OdInput, TaxiOrder};
use std::sync::Arc;

/// Encoded OD input: indices and scalars ready for [`crate::OdEncoder`].
#[derive(Clone, Debug)]
pub struct EncodedOd {
    /// Matched origin road segment (index into the embedding table).
    pub origin_edge: usize,
    /// Matched destination road segment.
    pub dest_edge: usize,
    /// Position ratio r\[1\] of the origin on its segment.
    pub r_start: f32,
    /// Position ratio r[-1] of the destination on its segment.
    pub r_end: f32,
    /// Weekly temporal-graph node of the departure slot.
    pub depart_node: usize,
    /// Normalized remainder t_r / Δt of the departure time.
    pub depart_rem: f32,
    /// Raw departure timestamp (used only by the T-stamp ablation).
    pub depart_raw: f32,
    /// Weather one-hot.
    pub weather_onehot: Vec<f32>,
    /// Downsampled speed matrix `[1, h, w]` (shared across samples of the
    /// same slot).
    pub speed_matrix: Arc<Tensor>,
}

/// One encoded trajectory step for [`crate::TrajectoryEncoder`].
#[derive(Clone, Debug)]
pub struct EncodedStep {
    /// Road segment index.
    pub edge: usize,
    /// Weekly nodes of the slots the interval covers (Δd entries).
    pub slot_nodes: Vec<usize>,
    /// Normalized entry remainder.
    pub rem_enter: f32,
    /// Normalized exit remainder.
    pub rem_exit: f32,
}

/// A fully encoded training sample: OD features, trajectory features,
/// label.
#[derive(Clone, Debug)]
pub struct EncodedSample {
    /// The OD-side features.
    pub od: EncodedOd,
    /// The trajectory steps (empty only for corrupt inputs, which the
    /// pipeline filters out).
    pub steps: Vec<EncodedStep>,
    /// Trajectory position ratios (fed to the trajectory encoder's final
    /// MLP).
    pub traj_r_start: f32,
    /// See `traj_r_start`.
    pub traj_r_end: f32,
    /// Ground-truth travel time (seconds).
    pub travel_time: f32,
}

/// Spatial resolution the speed matrices are downsampled to before the CNN
/// (keeps the external encoder's cost independent of city size, like the
/// paper's fixed 200 m grid does for fixed-extent cities).
const TRAF_GRID: usize = 12;

/// Per-city feature state.
pub struct FeatureContext {
    slots: TimeSlots,
    grid: SpatialGrid,
    speeds: SpeedMatrixStore,
    num_edges: usize,
    /// Cache of downsampled matrices keyed by speed-store slot. A `Mutex`
    /// (not `RefCell`) so encoding can run from worker threads.
    matrix_cache: std::sync::Mutex<std::collections::HashMap<usize, Arc<Tensor>>>,
}

impl FeatureContext {
    /// Builds the context for a dataset: spatial index, slot grid, and
    /// speed matrices accumulated from the *training* trajectories (test
    /// trips must not leak into the traffic-condition feature). Errors
    /// when `slot_seconds` is not a usable discretization (non-positive
    /// or not a whole-slot divisor of a week).
    pub fn build(ds: &CityDataset, slot_seconds: f64) -> Result<Self, TimeSlotError> {
        let slots = TimeSlots::new(0.0, slot_seconds)?;
        let grid = SpatialGrid::build(&ds.net, 250.0);
        let horizon = ds.horizon();
        // 5-minute speed matrices as in §6.1. The matrices model a *live*
        // probe-vehicle feed: every trip (whatever split it later falls in)
        // contributes observations at the time they physically happened,
        // and a query at time t reads only the matrix before t — so no
        // label information leaks across the train/test boundary.
        let mut builder = SpeedMatrixBuilder::new(&ds.net, 500.0, 300.0, horizon);
        for order in ds.train.iter().chain(&ds.validation).chain(&ds.test) {
            for step in &order.trajectory.path {
                let e = ds.net.edge(step.edge);
                let dt = step.duration().max(1e-6);
                let v = e.length / dt;
                let mid = ds.net.edge_midpoint(step.edge);
                builder.observe(&mid, step.enter, v);
            }
        }
        Ok(FeatureContext {
            slots,
            grid,
            speeds: builder.build(),
            num_edges: ds.net.num_edges(),
            matrix_cache: Default::default(),
        })
    }

    /// The slot discretization.
    pub fn slots(&self) -> &TimeSlots {
        &self.slots
    }

    /// Number of road segments (embedding vocabulary size).
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of temporal-graph nodes (time-slot vocabulary size).
    pub fn num_slot_nodes(&self) -> usize {
        self.slots.slots_per_week()
    }

    /// The speed-matrix CNN input resolution `(h, w)`.
    pub fn traffic_dims(&self) -> (usize, usize) {
        (TRAF_GRID, TRAF_GRID)
    }

    fn downsampled_matrix(&self, t: f64) -> Arc<Tensor> {
        let slot = deepod_tensor::floor_index(t.max(0.0) / self.speeds.slot_len());
        let slot = slot.min(self.speeds.num_slots() - 1);
        // Poisoning cannot corrupt the cache (entries are written whole);
        // recover the guard rather than propagating a worker panic twice.
        if let Some(m) = self
            .matrix_cache
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&slot)
        {
            return Arc::clone(m);
        }
        let src = self
            .speeds
            .nearest_before(slot as f64 * self.speeds.slot_len() + 1.0);
        let (sh, sw) = (src.dim(0), src.dim(1));
        let mut out = Tensor::zeros(&[1, TRAF_GRID, TRAF_GRID]);
        for y in 0..TRAF_GRID {
            for x in 0..TRAF_GRID {
                // Average the source cells that map into this target cell.
                let y0 = y * sh / TRAF_GRID;
                let y1 = (((y + 1) * sh).div_ceil(TRAF_GRID)).min(sh).max(y0 + 1);
                let x0 = x * sw / TRAF_GRID;
                let x1 = (((x + 1) * sw).div_ceil(TRAF_GRID)).min(sw).max(x0 + 1);
                let mut acc = 0.0f32;
                let mut cnt = 0;
                for yy in y0..y1 {
                    for xx in x0..x1 {
                        acc += src.at(&[yy, xx]);
                        cnt += 1;
                    }
                }
                // Normalize speeds (m/s) to roughly unit scale for the CNN.
                *out.at_mut(&[0, y, x]) = acc / cnt.max(1) as f32 / 15.0;
            }
        }
        let rc = Arc::new(out);
        self.matrix_cache
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(slot, Arc::clone(&rc));
        rc
    }

    /// Encodes a raw OD input; `None` when an endpoint cannot be matched to
    /// any road segment within 600 m.
    pub fn encode_od(&self, net: &RoadNetwork, od: &OdInput) -> Option<EncodedOd> {
        let (oe, opr) = self.grid.nearest_edge(net, &od.origin, 600.0)?;
        let (de, dpr) = self.grid.nearest_edge(net, &od.destination, 600.0)?;
        let mut weather_onehot = vec![0.0f32; NUM_WEATHER_TYPES];
        weather_onehot[od.weather.idx()] = 1.0;
        Some(EncodedOd {
            origin_edge: oe.idx(),
            dest_edge: de.idx(),
            r_start: opr.t as f32,
            r_end: (1.0 - dpr.t) as f32,
            depart_node: self.slots.week_node_of(od.depart),
            depart_rem: self.slots.remainder_norm(od.depart),
            // Scaled so the T-stamp ablation feeds a large-ish raw value,
            // reproducing the feature-domination pathology §6.5 describes.
            depart_raw: (od.depart / 3600.0) as f32,
            weather_onehot,
            speed_matrix: self.downsampled_matrix(od.depart),
        })
    }

    /// Encodes a full taxi order (OD + trajectory + label); `None` when the
    /// OD endpoints don't match or the trajectory is empty.
    pub fn encode_order(&self, net: &RoadNetwork, order: &TaxiOrder) -> Option<EncodedSample> {
        let od = self.encode_od(net, &order.od)?;
        if order.trajectory.path.is_empty() {
            return None;
        }
        let steps = order
            .trajectory
            .path
            .iter()
            .map(|s| EncodedStep {
                edge: s.edge.idx(),
                slot_nodes: self.slots.interval_week_nodes(s.enter, s.exit),
                rem_enter: self.slots.remainder_norm(s.enter),
                rem_exit: self.slots.remainder_norm(s.exit),
            })
            .collect();
        Some(EncodedSample {
            od,
            steps,
            traj_r_start: order.trajectory.r_start as f32,
            traj_r_end: order.trajectory.r_end as f32,
            travel_time: order.travel_time as f32,
        })
    }

    /// Encodes a batch of orders, dropping unmatchable ones.
    pub fn encode_orders(&self, net: &RoadNetwork, orders: &[TaxiOrder]) -> Vec<EncodedSample> {
        orders
            .iter()
            .filter_map(|o| self.encode_order(net, o))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepod_roadnet::CityProfile;
    use deepod_traj::{DatasetBuilder, DatasetConfig};

    fn small_ds() -> CityDataset {
        DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 60))
    }

    #[test]
    fn encodes_most_orders() {
        let ds = small_ds();
        let ctx = FeatureContext::build(&ds, 300.0).expect("valid slot size");
        let enc = ctx.encode_orders(&ds.net, &ds.train);
        assert!(enc.len() * 10 >= ds.train.len() * 9, "too many dropped");
        for s in &enc {
            assert!(s.od.origin_edge < ctx.num_edges());
            assert!(s.od.dest_edge < ctx.num_edges());
            assert!((0.0..=1.0).contains(&s.od.r_start));
            assert!((0.0..=1.0).contains(&s.od.r_end));
            assert!(s.od.depart_node < ctx.num_slot_nodes());
            assert!((0.0..1.0 + 1e-6).contains(&s.od.depart_rem));
            assert!(!s.steps.is_empty());
            assert!(s.travel_time > 0.0);
            assert_eq!(s.od.weather_onehot.len(), NUM_WEATHER_TYPES);
            assert!((s.od.weather_onehot.iter().sum::<f32>() - 1.0).abs() < 1e-6);
            for step in &s.steps {
                assert!(!step.slot_nodes.is_empty());
                assert!(step.slot_nodes.iter().all(|&n| n < ctx.num_slot_nodes()));
            }
        }
    }

    #[test]
    fn speed_matrix_shape_and_cache() {
        let ds = small_ds();
        let ctx = FeatureContext::build(&ds, 300.0).expect("valid slot size");
        let od = &ds.train[0].od;
        let e1 = ctx.encode_od(&ds.net, od).unwrap();
        let e2 = ctx.encode_od(&ds.net, od).unwrap();
        assert_eq!(e1.speed_matrix.dims(), &[1, TRAF_GRID, TRAF_GRID]);
        // Cached: same Rc.
        assert!(Arc::ptr_eq(&e1.speed_matrix, &e2.speed_matrix));
        // Normalized speeds should be O(1).
        assert!(e1.speed_matrix.max() < 5.0);
        assert!(e1.speed_matrix.min() > 0.0);
    }

    #[test]
    fn unmatched_point_returns_none() {
        let ds = small_ds();
        let ctx = FeatureContext::build(&ds, 300.0).expect("valid slot size");
        let mut od = ds.train[0].od;
        od.origin = deepod_roadnet::Point::new(-1e6, -1e6);
        assert!(ctx.encode_od(&ds.net, &od).is_none());
    }

    #[test]
    fn interval_slots_cover_duration() {
        let ds = small_ds();
        let ctx = FeatureContext::build(&ds, 300.0).expect("valid slot size");
        let enc = ctx.encode_orders(&ds.net, &ds.train[..10.min(ds.train.len())]);
        for s in &enc {
            for (step, raw) in s.steps.iter().zip(&ds.train[0].trajectory.path) {
                // Δd = tp(exit) − tp(enter) + 1 ≥ 1 (Eq. 4).
                assert!(!step.slot_nodes.is_empty());
                let _ = raw;
            }
        }
    }
}

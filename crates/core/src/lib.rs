//! DeepOD — origin–destination travel time estimation that exploits
//! historical trajectories over road networks (reproduction of the SIGMOD
//! 2020 paper).
//!
//! The model has three modules (Fig. 3 of the paper):
//!
//! * **M_O** ([`OdEncoder`]) encodes the OD input — origin/destination road
//!   segments with position ratios, departure time slot + remainder,
//!   external features — into a hidden representation `code`.
//! * **M_T** ([`TrajectoryEncoder`]) encodes the affiliated trajectory (a
//!   spatio-temporal path) into `stcode`.
//! * **M_E** (inside [`DeepOdModel`]) regresses travel time from `code`.
//!
//! Training minimizes `w · ‖code − stcode‖₂ + (1 − w) · MAE(ŷ, y)` so the
//! OD representation is pulled toward the representation of the route the
//! trip actually took; at prediction time only M_O and M_E run.
//!
//! # Quick start
//!
//! ```no_run
//! use deepod_core::{DeepOdConfig, Trainer, TrainOptions};
//! use deepod_traj::{DatasetBuilder, DatasetConfig};
//! use deepod_roadnet::CityProfile;
//!
//! let ds = DatasetBuilder::build(&DatasetConfig::for_profile(
//!     CityProfile::SynthChengdu, 2_000));
//! let cfg = DeepOdConfig::default();
//! let mut trainer = Trainer::new(&ds, cfg, TrainOptions::default())
//!     .expect("config validates and the dataset is non-empty");
//! let report = trainer.train();
//! println!("validation MAE: {:.1}s", report.best_val_mae);
//! let preds = trainer.predict_orders(&ds.test);
//! ```

mod ablation;
pub mod checkpoint;
mod config;
mod external_encoder;
mod features;
mod interval_encoder;
pub mod io_guard;
mod model;
pub mod obs;
mod od_encoder;
pub mod oracle;
mod quantized;
mod runtime;
mod temporal_graph;
mod timeslot;
mod train;
mod trajectory_encoder;

pub use ablation::{EmbeddingInit, Variant};
pub use checkpoint::{TrainProgress, TrainingCheckpoint, CHECKPOINT_VERSION};
pub use config::DeepOdConfig;
pub use external_encoder::ExternalFeaturesEncoder;
pub use features::{EncodedOd, EncodedSample, FeatureContext};
pub use interval_encoder::TimeIntervalEncoder;
pub use io_guard::IoGuardError;
pub use model::{DeepOdModel, ModelError, PredictRequest, PredictResponse};
pub use od_encoder::OdEncoder;
pub use oracle::{
    model_fingerprint, precompute, OdKeyer, OdOracle, OracleEntry, OracleError, OracleKey,
    PrecomputeSpec, ORACLE_VERSION,
};
pub use quantized::QuantizedModel;
pub use runtime::{
    configured_cache_capacity, configured_oracle_path, configured_serve_workers, RuntimeConfig,
    RuntimeError, RuntimeOverrides,
};
pub use temporal_graph::{build_temporal_graph, temporal_graph_day_only};
pub use timeslot::{TimeSlotError, TimeSlots};
pub use train::{CheckpointPolicy, CurvePoint, TrainOptions, TrainReport, Trainer};
pub use trajectory_encoder::TrajectoryEncoder;

//! The temporal graph of §4.2 (Fig. 5b): one node per time slot of a week,
//! with two families of directed edges —
//!
//! 1. **neighboring-slot** edges (slot → next slot), encoding that adjacent
//!    slots should have smooth representations;
//! 2. **neighboring-day** edges (slot → same slot next day), encoding daily
//!    periodicity (the improvement over MURAT's undirected day-only graph).
//!
//! The graph wraps around the week so Sunday's last slot links to Monday's
//! first. We also add the reverse direction of each link at a smaller
//! weight: the paper's graph is directed (to capture sequence), but the
//! random-walk embedding methods need non-sink nodes in both directions to
//! mix well.

use crate::timeslot::TimeSlots;
use deepod_graphembed::EmbedGraph;

/// Weight of forward links (next slot, next day).
const FORWARD_W: f64 = 1.0;
/// Weight of the added reverse links.
const BACKWARD_W: f64 = 0.5;

/// Builds the weekly temporal graph for a slot discretization.
pub fn build_temporal_graph(slots: &TimeSlots) -> EmbedGraph {
    let n = slots.slots_per_week();
    let per_day = slots.slots_per_day();
    let mut g = EmbedGraph::with_nodes(n);
    for i in 0..n {
        let next = (i + 1) % n;
        g.add_link(i, next, FORWARD_W);
        g.add_link(next, i, BACKWARD_W);
        let next_day = (i + per_day) % n;
        if next_day != next {
            g.add_link(i, next_day, FORWARD_W);
            g.add_link(next_day, i, BACKWARD_W);
        }
    }
    g
}

/// The T-day ablation of §6.5: daily periodicity only — a one-day ring of
/// slots (every weekday collapses onto the same node set).
pub fn temporal_graph_day_only(slots: &TimeSlots) -> EmbedGraph {
    let n = slots.slots_per_day();
    let mut g = EmbedGraph::with_nodes(n);
    for i in 0..n {
        let next = (i + 1) % n;
        g.add_link(i, next, FORWARD_W);
        g.add_link(next, i, BACKWARD_W);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weekly_graph_size_matches_paper() {
        let g = build_temporal_graph(&TimeSlots::five_minutes());
        assert_eq!(g.num_nodes(), 2016);
        // Each node: next-slot fwd+bwd, next-day fwd+bwd = 4 outgoing links
        // counted once per direction from each side => num_links = 4 * n.
        assert_eq!(g.num_links(), 4 * 2016);
    }

    #[test]
    fn neighbor_and_day_links_present() {
        let slots = TimeSlots::five_minutes();
        let g = build_temporal_graph(&slots);
        let per_day = slots.slots_per_day();
        assert!(g.has_link(0, 1), "missing neighboring-slot link");
        assert!(g.has_link(0, per_day), "missing neighboring-day link");
        assert!(g.has_link(1, 0), "missing reverse link");
        // Week wrap: last slot links to slot 0.
        assert!(g.has_link(2015, 0));
        // Sunday slot k links to Monday slot k.
        assert!(g.has_link(6 * per_day + 5, 5));
    }

    #[test]
    fn day_only_graph_is_a_ring() {
        let slots = TimeSlots::five_minutes();
        let g = temporal_graph_day_only(&slots);
        assert_eq!(g.num_nodes(), 288);
        assert_eq!(g.num_links(), 2 * 288);
        assert!(g.has_link(287, 0));
        assert!(g.has_link(0, 287));
    }

    #[test]
    fn no_sinks_anywhere() {
        let g = build_temporal_graph(&TimeSlots::five_minutes());
        for i in 0..g.num_nodes() {
            assert!(g.out_degree(i) > 0, "node {i} is a sink");
        }
    }

    #[test]
    fn coarse_slots_small_graph() {
        let slots = TimeSlots::new(0.0, 3600.0).expect("valid slot size"); // hourly
        let g = build_temporal_graph(&slots);
        assert_eq!(g.num_nodes(), 168);
    }
}

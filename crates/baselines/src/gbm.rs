//! Gradient-boosted regression trees — the paper's GBM baseline
//! (implemented there with XGBoost; here a self-contained histogram-based
//! GBDT with squared loss, shrinkage and feature subsampling).

use crate::common::{extract_features, TtePredictor, NUM_OD_FEATURES};
use deepod_traj::{CityDataset, OdInput};
use rand::Rng;

/// GBDT hyper-parameters.
#[derive(Clone, Debug)]
pub struct GbmConfig {
    /// Number of boosting rounds (trees).
    pub num_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Learning rate (shrinkage).
    pub shrinkage: f32,
    /// Minimum samples per leaf.
    pub min_leaf: usize,
    /// Histogram bins per feature.
    pub bins: usize,
    /// Fraction of features considered per split.
    pub colsample: f64,
    /// RNG seed for column subsampling.
    pub seed: u64,
}

impl Default for GbmConfig {
    fn default() -> Self {
        GbmConfig {
            num_trees: 60,
            max_depth: 5,
            shrinkage: 0.1,
            min_leaf: 8,
            bins: 32,
            colsample: 0.8,
            seed: 0x6B17,
        }
    }
}

/// A node of a regression tree, stored in a flat arena.
#[derive(Clone, Debug)]
enum Node {
    Leaf {
        value: f32,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
}

#[derive(Clone, Debug, Default)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn predict(&self, x: &[f32]) -> f32 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// The boosted ensemble.
pub struct GbmPredictor {
    cfg: GbmConfig,
    base: f32,
    trees: Vec<Tree>,
}

struct SplitResult {
    feature: usize,
    threshold: f32,
    gain: f64,
}

impl GbmPredictor {
    /// Creates an unfitted predictor.
    pub fn new(cfg: GbmConfig) -> Self {
        GbmPredictor {
            cfg,
            base: 0.0,
            trees: Vec::new(),
        }
    }

    /// Number of trees actually grown.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    fn best_split(
        &self,
        xs: &[Vec<f32>],
        residuals: &[f32],
        idx: &[u32],
        features: &[usize],
    ) -> Option<SplitResult> {
        let total_sum: f64 = idx.iter().map(|&i| residuals[i as usize] as f64).sum();
        let total_cnt = idx.len() as f64;
        let parent_score = total_sum * total_sum / total_cnt;
        let mut best: Option<SplitResult> = None;

        for &f in features {
            // Histogram over the candidate feature.
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for &i in idx {
                let v = xs[i as usize][f];
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi - lo < 1e-9 {
                continue;
            }
            let nb = self.cfg.bins;
            let width = (hi - lo) / nb as f32;
            let mut sums = vec![0.0f64; nb];
            let mut cnts = vec![0usize; nb];
            for &i in idx {
                let v = xs[i as usize][f];
                let b = (((v - lo) / width) as usize).min(nb - 1);
                sums[b] += residuals[i as usize] as f64;
                cnts[b] += 1;
            }
            let mut lsum = 0.0f64;
            let mut lcnt = 0usize;
            for b in 0..nb - 1 {
                lsum += sums[b];
                lcnt += cnts[b];
                let rcnt = idx.len() - lcnt;
                if lcnt < self.cfg.min_leaf || rcnt < self.cfg.min_leaf {
                    continue;
                }
                let rsum = total_sum - lsum;
                let score = lsum * lsum / lcnt as f64 + rsum * rsum / rcnt as f64;
                let gain = score - parent_score;
                if gain > 1e-9 && best.as_ref().is_none_or(|b| gain > b.gain) {
                    best = Some(SplitResult {
                        feature: f,
                        threshold: lo + width * (b + 1) as f32,
                        gain,
                    });
                }
            }
        }
        best
    }

    fn grow(
        &self,
        tree: &mut Tree,
        xs: &[Vec<f32>],
        residuals: &[f32],
        idx: Vec<u32>,
        depth: usize,
        rng: &mut rand::rngs::StdRng,
    ) -> usize {
        let mean = idx
            .iter()
            .map(|&i| residuals[i as usize] as f64)
            .sum::<f64>()
            / idx.len().max(1) as f64;
        if depth >= self.cfg.max_depth || idx.len() < 2 * self.cfg.min_leaf {
            tree.nodes.push(Node::Leaf { value: mean as f32 });
            return tree.nodes.len() - 1;
        }
        // Column subsample.
        let mut features: Vec<usize> = (0..NUM_OD_FEATURES)
            .filter(|_| rng.gen_bool(self.cfg.colsample))
            .collect();
        if features.is_empty() {
            features.push(rng.gen_range(0..NUM_OD_FEATURES));
        }
        let Some(split) = self.best_split(xs, residuals, &idx, &features) else {
            tree.nodes.push(Node::Leaf { value: mean as f32 });
            return tree.nodes.len() - 1;
        };
        let (mut left_idx, mut right_idx) = (Vec::new(), Vec::new());
        for &i in &idx {
            if xs[i as usize][split.feature] <= split.threshold {
                left_idx.push(i);
            } else {
                right_idx.push(i);
            }
        }
        if left_idx.is_empty() || right_idx.is_empty() {
            tree.nodes.push(Node::Leaf { value: mean as f32 });
            return tree.nodes.len() - 1;
        }
        let me = tree.nodes.len();
        tree.nodes.push(Node::Leaf { value: 0.0 }); // placeholder
        let left = self.grow(tree, xs, residuals, left_idx, depth + 1, rng);
        let right = self.grow(tree, xs, residuals, right_idx, depth + 1, rng);
        tree.nodes[me] = Node::Split {
            feature: split.feature,
            threshold: split.threshold,
            left,
            right,
        };
        me
    }
}

impl TtePredictor for GbmPredictor {
    fn name(&self) -> &'static str {
        "GBM"
    }

    fn fit(&mut self, ds: &CityDataset) {
        let xs: Vec<Vec<f32>> = ds.train.iter().map(|o| extract_features(&o.od)).collect();
        let ys: Vec<f32> = ds.train.iter().map(|o| o.travel_time as f32).collect();
        if xs.is_empty() {
            return;
        }
        self.base = ys.iter().sum::<f32>() / ys.len() as f32;
        let mut preds = vec![self.base; ys.len()];
        let mut rng = deepod_tensor::rng_from_seed(self.cfg.seed);
        self.trees.clear();

        for _ in 0..self.cfg.num_trees {
            let residuals: Vec<f32> = ys.iter().zip(&preds).map(|(&y, &p)| y - p).collect();
            let all: Vec<u32> = (0..xs.len() as u32).collect();
            let mut tree = Tree::default();
            self.grow_root(&mut tree, &xs, &residuals, all, &mut rng);
            for (p, x) in preds.iter_mut().zip(&xs) {
                *p += self.cfg.shrinkage * tree.predict(x);
            }
            self.trees.push(tree);
        }
    }

    fn predict(&mut self, od: &OdInput) -> Option<f32> {
        if self.trees.is_empty() {
            return None;
        }
        let x = extract_features(od);
        let mut y = self.base;
        for t in &self.trees {
            y += self.cfg.shrinkage * t.predict(&x);
        }
        Some(y.max(0.0))
    }

    fn size_bytes(&self) -> usize {
        self.trees
            .iter()
            .map(|t| t.nodes.len() * size_of::<Node>())
            .sum::<usize>()
            + 4
    }
}

impl GbmPredictor {
    fn grow_root(
        &self,
        tree: &mut Tree,
        xs: &[Vec<f32>],
        residuals: &[f32],
        idx: Vec<u32>,
        rng: &mut rand::rngs::StdRng,
    ) {
        if idx.is_empty() {
            tree.nodes.push(Node::Leaf { value: 0.0 });
            return;
        }
        self.grow(tree, xs, residuals, idx, 0, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepod_roadnet::CityProfile;
    use deepod_traj::{DatasetBuilder, DatasetConfig};

    fn mae(p: &mut dyn TtePredictor, ds: &CityDataset) -> f32 {
        let mut acc = 0.0;
        let mut n = 0;
        for o in &ds.test {
            if let Some(y) = p.predict(&o.od) {
                acc += (y - o.travel_time as f32).abs();
                n += 1;
            }
        }
        acc / n.max(1) as f32
    }

    #[test]
    fn fits_nonlinear_structure_better_than_mean() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 300));
        let mut gbm = GbmPredictor::new(GbmConfig {
            num_trees: 40,
            ..Default::default()
        });
        gbm.fit(&ds);
        assert_eq!(gbm.num_trees(), 40);
        let mean = ds.mean_train_travel_time() as f32;
        let mae_mean: f32 = ds
            .test
            .iter()
            .map(|o| (mean - o.travel_time as f32).abs())
            .sum::<f32>()
            / ds.test.len() as f32;
        let m = mae(&mut gbm, &ds);
        assert!(m < mae_mean * 0.9, "GBM {m:.1} vs mean {mae_mean:.1}");
    }

    #[test]
    fn beats_linear_regression_on_this_task() {
        // Travel time is nonlinear in OD features (congestion, routes), so
        // trees should at least match LR; this mirrors the paper's Table 4
        // ordering GBM < LR (lower error).
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 400));
        let mut gbm = GbmPredictor::new(GbmConfig {
            num_trees: 120,
            ..Default::default()
        });
        gbm.fit(&ds);
        let mut lr = crate::LinearRegression::new(1e-3);
        TtePredictor::fit(&mut lr, &ds);
        let m_gbm = mae(&mut gbm, &ds);
        let m_lr = mae(&mut lr, &ds);
        assert!(
            m_gbm < m_lr * 1.1,
            "GBM {m_gbm:.1} should be competitive with LR {m_lr:.1}"
        );
    }

    #[test]
    fn deeper_trees_fit_train_better() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 200));
        let train_mae = |depth: usize| {
            let mut gbm = GbmPredictor::new(GbmConfig {
                max_depth: depth,
                num_trees: 30,
                ..Default::default()
            });
            gbm.fit(&ds);
            let mut acc = 0.0;
            for o in &ds.train {
                acc += (gbm.predict(&o.od).unwrap() - o.travel_time as f32).abs();
            }
            acc / ds.train.len() as f32
        };
        let shallow = train_mae(2);
        let deep = train_mae(6);
        assert!(
            deep <= shallow,
            "deeper trees must fit train at least as well"
        );
    }

    #[test]
    fn unfitted_returns_none() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 20));
        let mut gbm = GbmPredictor::new(GbmConfig::default());
        assert!(gbm.predict(&ds.train[0].od).is_none());
    }

    #[test]
    fn size_grows_with_trees() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 100));
        let mut small = GbmPredictor::new(GbmConfig {
            num_trees: 5,
            ..Default::default()
        });
        small.fit(&ds);
        let mut large = GbmPredictor::new(GbmConfig {
            num_trees: 40,
            ..Default::default()
        });
        large.fit(&ds);
        assert!(large.size_bytes() > small.size_bytes());
    }
}

//! Shared baseline infrastructure: the predictor trait and the
//! hand-crafted OD feature vector used by LR / GBM / STNN.

use deepod_traffic::{NUM_WEATHER_TYPES, SECONDS_PER_DAY, SECONDS_PER_WEEK};
use deepod_traj::{CityDataset, OdInput};

/// Width of [`extract_features`]'s output: origin (2) + destination (2) +
/// euclidean distance (1) + hour sin/cos (2) + day-of-week one-hot (7) +
/// weather one-hot (16).
pub const NUM_OD_FEATURES: usize = 2 + 2 + 1 + 2 + 7 + NUM_WEATHER_TYPES;

/// A fixed-width OD feature vector.
pub type FeatureVec = Vec<f32>;

/// Extracts the baseline feature vector from an OD input. Coordinates and
/// distance are scaled to kilometers so all features are O(1)–O(10).
pub fn extract_features(od: &OdInput) -> FeatureVec {
    let mut f = Vec::with_capacity(NUM_OD_FEATURES);
    f.push((od.origin.x / 1000.0) as f32);
    f.push((od.origin.y / 1000.0) as f32);
    f.push((od.destination.x / 1000.0) as f32);
    f.push((od.destination.y / 1000.0) as f32);
    f.push((od.origin.dist(&od.destination) / 1000.0) as f32);

    let tod = od.depart.rem_euclid(SECONDS_PER_DAY) / SECONDS_PER_DAY;
    f.push((tod * std::f64::consts::TAU).sin() as f32);
    f.push((tod * std::f64::consts::TAU).cos() as f32);

    let dow = (od.depart.rem_euclid(SECONDS_PER_WEEK) / SECONDS_PER_DAY) as usize % 7;
    for d in 0..7 {
        f.push(if d == dow { 1.0 } else { 0.0 });
    }
    for w in 0..NUM_WEATHER_TYPES {
        f.push(if w == od.weather.idx() { 1.0 } else { 0.0 });
    }
    debug_assert_eq!(f.len(), NUM_OD_FEATURES);
    f
}

/// Uniform interface over all travel-time estimators (baselines and, via a
/// wrapper in the eval crate, DeepOD).
pub trait TtePredictor {
    /// Human-readable method name as it appears in the paper's tables.
    fn name(&self) -> &'static str;

    /// Fits the predictor on the dataset's training split.
    fn fit(&mut self, ds: &CityDataset);

    /// Predicts travel time (seconds) for an OD input; `None` when the
    /// method cannot produce an estimate (e.g. TEMP finds no neighbors).
    fn predict(&mut self, od: &OdInput) -> Option<f32>;

    /// Approximate in-memory model size in bytes (Table 5).
    fn size_bytes(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepod_roadnet::Point;
    use deepod_traffic::WeatherType;

    fn od(depart: f64, weather: u8) -> OdInput {
        OdInput {
            origin: Point::new(1000.0, 2000.0),
            destination: Point::new(4000.0, 6000.0),
            depart,
            weather: WeatherType(weather),
        }
    }

    #[test]
    fn feature_width_and_scaling() {
        let f = extract_features(&od(3600.0, 2));
        assert_eq!(f.len(), NUM_OD_FEATURES);
        assert_eq!(f[0], 1.0);
        assert_eq!(f[3], 6.0);
        assert!((f[4] - 5.0).abs() < 1e-5, "euclidean distance in km");
    }

    #[test]
    fn day_of_week_one_hot() {
        // depart at day 0 (Monday) vs day 2.
        let f0 = extract_features(&od(100.0, 0));
        let f2 = extract_features(&od(2.0 * SECONDS_PER_DAY + 100.0, 0));
        let dow0: Vec<f32> = f0[7..14].to_vec();
        let dow2: Vec<f32> = f2[7..14].to_vec();
        assert_eq!(dow0[0], 1.0);
        assert_eq!(dow2[2], 1.0);
        assert_eq!(dow0.iter().sum::<f32>(), 1.0);
        assert_eq!(dow2.iter().sum::<f32>(), 1.0);
    }

    #[test]
    fn hour_encoding_periodic() {
        let f_a = extract_features(&od(6.0 * 3600.0, 0));
        let f_b = extract_features(&od(6.0 * 3600.0 + SECONDS_PER_DAY, 0));
        assert!((f_a[5] - f_b[5]).abs() < 1e-6);
        assert!((f_a[6] - f_b[6]).abs() < 1e-6);
    }

    #[test]
    fn weather_one_hot_position() {
        let f = extract_features(&od(0.0, 7));
        let wea = &f[14..];
        assert_eq!(wea[7], 1.0);
        assert_eq!(wea.iter().sum::<f32>(), 1.0);
    }
}

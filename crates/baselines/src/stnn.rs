//! STNN (Jindal et al. 2017): a two-stage deep baseline — a first MLP
//! predicts the trip *distance* from the raw OD coordinates, a second MLP
//! combines the predicted distance with temporal features to predict the
//! travel time. STNN deliberately ignores the road network (the paper
//! cites this as its main weakness, §6.4.1).

use crate::common::TtePredictor;
use deepod_nn::layers::Mlp2;
use deepod_nn::{AdamOptimizer, Graph, ParamStore};
use deepod_tensor::Tensor;
use deepod_traffic::{SECONDS_PER_DAY, SECONDS_PER_WEEK};
use deepod_traj::{CityDataset, OdInput};
use rand::Rng;

/// STNN hyper-parameters.
#[derive(Clone, Debug)]
pub struct StnnConfig {
    /// Hidden width of both MLPs.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StnnConfig {
    fn default() -> Self {
        StnnConfig {
            hidden: 32,
            epochs: 8,
            batch_size: 16,
            lr: 0.01,
            seed: 0x57AA,
        }
    }
}

/// The STNN predictor.
pub struct StnnPredictor {
    cfg: StnnConfig,
    store: ParamStore,
    dist_net: Option<Mlp2>,
    time_net: Option<Mlp2>,
    y_mean: f32,
    y_std: f32,
}

/// Spatial input: origin + destination in km (4 features).
fn spatial_features(od: &OdInput) -> Vec<f32> {
    vec![
        (od.origin.x / 1000.0) as f32,
        (od.origin.y / 1000.0) as f32,
        (od.destination.x / 1000.0) as f32,
        (od.destination.y / 1000.0) as f32,
    ]
}

/// Temporal input: hour sin/cos + weekday flag (3 features).
fn temporal_features(od: &OdInput) -> Vec<f32> {
    let tod = od.depart.rem_euclid(SECONDS_PER_DAY) / SECONDS_PER_DAY;
    let dow = (od.depart.rem_euclid(SECONDS_PER_WEEK) / SECONDS_PER_DAY) as usize % 7;
    vec![
        (tod * std::f64::consts::TAU).sin() as f32,
        (tod * std::f64::consts::TAU).cos() as f32,
        if dow >= 5 { 1.0 } else { 0.0 },
    ]
}

impl StnnPredictor {
    /// Creates an unfitted predictor.
    pub fn new(cfg: StnnConfig) -> Self {
        StnnPredictor {
            cfg,
            store: ParamStore::new(),
            dist_net: None,
            time_net: None,
            y_mean: 0.0,
            y_std: 1.0,
        }
    }

    fn forward(&mut self, od: &OdInput) -> f32 {
        let (dist_net, time_net) = match (&self.dist_net, &self.time_net) {
            (Some(d), Some(t)) => (*d, *t),
            _ => return 0.0,
        };
        let mut g = Graph::new();
        let sx = g.input(Tensor::from_vec(spatial_features(od), &[4]));
        let dist = dist_net.forward(&mut g, &self.store, sx);
        let tfeat = g.input(Tensor::from_vec(temporal_features(od), &[3]));
        let cat = g.concat(&[dist, tfeat]);
        let y = time_net.forward(&mut g, &self.store, cat);
        g.value(y).item() * self.y_std + self.y_mean
    }

    fn validation_mae(&mut self, ds: &CityDataset) -> f32 {
        let n = ds.validation.len().min(256);
        if n == 0 {
            return f32::NAN;
        }
        let mut acc = 0.0;
        for o in &ds.validation[..n] {
            acc += (self.forward(&o.od).max(0.0) - o.travel_time as f32).abs();
        }
        acc / n as f32
    }

    /// Fits while recording `(step, validation MAE)` points every
    /// `eval_every` optimizer steps — the Fig. 10 training-curve hook.
    /// `eval_every = 0` records nothing (plain fit).
    pub fn fit_with_validation(
        &mut self,
        ds: &CityDataset,
        eval_every: usize,
    ) -> Vec<(usize, f32)> {
        let mut rng = deepod_tensor::rng_from_seed(self.cfg.seed);
        self.store = ParamStore::new();
        let dist_net = Mlp2::new(
            &mut self.store,
            "stnn.dist",
            4,
            self.cfg.hidden,
            1,
            &mut rng,
        );
        let time_net = Mlp2::new(
            &mut self.store,
            "stnn.time",
            1 + 3,
            self.cfg.hidden,
            1,
            &mut rng,
        );

        // Standardize time labels so the network trains in O(1) units.
        let mean_y = ds.mean_train_travel_time() as f32;
        let var_y = ds
            .train
            .iter()
            .map(|o| {
                let d = o.travel_time as f32 - mean_y;
                d * d
            })
            .sum::<f32>()
            / ds.train.len().max(1) as f32;
        self.y_mean = mean_y;
        self.y_std = var_y.sqrt().max(1.0);
        let mean_d = (ds
            .train
            .iter()
            .map(|o| o.od.origin.dist(&o.od.destination))
            .sum::<f64>()
            / ds.train.len().max(1) as f64
            / 1000.0) as f32;
        self.store
            .set_value(dist_net.l2.b, Tensor::from_vec(vec![mean_d], &[1]));
        self.dist_net = Some(dist_net);
        self.time_net = Some(time_net);

        let mut curve = Vec::new();
        let mut opt = AdamOptimizer::new(self.cfg.lr);
        let n = ds.train.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut step = 0usize;
        for epoch in 0..self.cfg.epochs {
            opt.set_lr(self.cfg.lr / 5.0f32.powi((epoch / 2) as i32));
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for chunk in order.chunks(self.cfg.batch_size) {
                let mut grads = deepod_nn::Gradients::new();
                for &idx in chunk {
                    let o = &ds.train[idx];
                    // Joint loss: supervise the first stage with the trip's
                    // straight-line distance, the second with travel time.
                    let mut g = Graph::new();
                    let sx = g.input(Tensor::from_vec(spatial_features(&o.od), &[4]));
                    let dist = dist_net.forward(&mut g, &self.store, sx);
                    let true_d = (o.od.origin.dist(&o.od.destination) / 1000.0) as f32;
                    let dtarget = g.input(Tensor::from_vec(vec![true_d], &[1]));
                    let dloss = g.mean_abs_error(dist, dtarget);

                    let tfeat = g.input(Tensor::from_vec(temporal_features(&o.od), &[3]));
                    let cat = g.concat(&[dist, tfeat]);
                    let y = time_net.forward(&mut g, &self.store, cat);
                    let y_norm = (o.travel_time as f32 - self.y_mean) / self.y_std;
                    let target = g.input(Tensor::from_vec(vec![y_norm], &[1]));
                    let tloss = g.mean_abs_error(y, target);

                    let dw = g.scale(dloss, 0.5); // auxiliary distance task
                    let loss = g.add(dw, tloss);
                    grads.merge(g.backward(loss));
                }
                grads.scale(1.0 / chunk.len() as f32);
                grads.clip_global_norm(5.0);
                opt.step(&mut self.store, &grads);
                step += 1;
                if eval_every > 0 && step.is_multiple_of(eval_every) {
                    let mae = self.validation_mae(ds);
                    curve.push((step, mae));
                }
            }
        }
        curve
    }
}

impl TtePredictor for StnnPredictor {
    fn name(&self) -> &'static str {
        "STNN"
    }

    fn fit(&mut self, ds: &CityDataset) {
        self.fit_with_validation(ds, 0);
    }

    fn predict(&mut self, od: &OdInput) -> Option<f32> {
        self.dist_net?;
        Some(self.forward(od).max(0.0))
    }

    fn size_bytes(&self) -> usize {
        self.store.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepod_roadnet::CityProfile;
    use deepod_traj::{DatasetBuilder, DatasetConfig};

    #[test]
    fn trains_and_beats_mean() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 400));
        let mut stnn = StnnPredictor::new(StnnConfig {
            epochs: 24,
            ..Default::default()
        });
        stnn.fit(&ds);
        let mean = ds.mean_train_travel_time() as f32;
        let mut mae = 0.0;
        let mut mae_mean = 0.0;
        for o in &ds.test {
            mae += (stnn.predict(&o.od).unwrap() - o.travel_time as f32).abs();
            mae_mean += (mean - o.travel_time as f32).abs();
        }
        mae /= ds.test.len() as f32;
        mae_mean /= ds.test.len() as f32;
        assert!(
            mae < mae_mean,
            "STNN {mae:.1} should beat mean {mae_mean:.1}"
        );
    }

    #[test]
    fn unfitted_returns_none() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 20));
        let mut stnn = StnnPredictor::new(StnnConfig::default());
        assert!(stnn.predict(&ds.train[0].od).is_none());
    }

    #[test]
    fn size_independent_of_dataset() {
        let small =
            DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 50));
        let big =
            DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 200));
        let mut a = StnnPredictor::new(StnnConfig::default());
        a.fit(&small);
        let mut b = StnnPredictor::new(StnnConfig::default());
        b.fit(&big);
        assert_eq!(a.size_bytes(), b.size_bytes());
    }

    #[test]
    fn longer_trips_predicted_longer() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 400));
        let mut stnn = StnnPredictor::new(StnnConfig {
            epochs: 24,
            ..Default::default()
        });
        stnn.fit(&ds);
        // Compare a short and a long trip at the same departure time.
        let mut short = ds.test[0].od;
        let mut long = short;
        long.destination =
            deepod_roadnet::Point::new(short.origin.x + 4000.0, short.origin.y + 4000.0);
        short.destination =
            deepod_roadnet::Point::new(short.origin.x + 400.0, short.origin.y + 400.0);
        let ps = stnn.predict(&short).unwrap();
        let pl = stnn.predict(&long).unwrap();
        assert!(
            pl > ps,
            "long trip {pl:.0}s should exceed short trip {ps:.0}s"
        );
    }

    #[test]
    fn curve_recorded_and_not_diverging() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 200));
        let mut stnn = StnnPredictor::new(StnnConfig {
            epochs: 10,
            ..Default::default()
        });
        let curve = stnn.fit_with_validation(&ds, 5);
        assert!(curve.len() >= 4, "curve too short: {}", curve.len());
        for w in curve.windows(2) {
            assert!(w[0].0 < w[1].0, "steps must increase");
        }
        assert!(
            curve.last().unwrap().1 <= curve[0].1 * 1.2,
            "validation MAE diverged: {} -> {}",
            curve[0].1,
            curve.last().unwrap().1
        );
    }
}

//! MURAT (Li et al., KDD 2018): multi-task representation learning for
//! travel time estimation. Origin and destination road segments are
//! embedded (the paper initializes them from an *undirected* road graph —
//! the weakness §4.1 calls out), the departure time slot is embedded from
//! an undirected day-only temporal graph, and a joint network predicts
//! both travel time and travel distance (the multi-task trick). No
//! trajectory information is used.

use crate::common::TtePredictor;
use deepod_core::{TimeSlotError, TimeSlots};
use deepod_graphembed::{EmbedGraph, GraphEmbedder, Node2Vec, WalkConfig};
use deepod_nn::layers::{Embedding, Mlp2};
use deepod_nn::{AdamOptimizer, Graph, ParamStore};
use deepod_roadnet::{RoadNetwork, SpatialGrid};
use deepod_tensor::Tensor;
use deepod_traj::{CityDataset, OdInput};
use rand::Rng;

/// MURAT hyper-parameters.
#[derive(Clone, Debug)]
pub struct MuratConfig {
    /// Road/time embedding width.
    pub emb_dim: usize,
    /// MLP hidden width.
    pub hidden: usize,
    /// Time-slot size (seconds) for the temporal embedding.
    pub slot_seconds: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Weight of the auxiliary distance task.
    pub distance_weight: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MuratConfig {
    fn default() -> Self {
        MuratConfig {
            emb_dim: 16,
            hidden: 32,
            slot_seconds: 300.0,
            epochs: 8,
            batch_size: 16,
            lr: 0.01,
            distance_weight: 0.3,
            seed: 0x3417A7,
        }
    }
}

/// The MURAT predictor.
pub struct MuratPredictor {
    cfg: MuratConfig,
    store: ParamStore,
    road_emb: Option<Embedding>,
    slot_emb: Option<Embedding>,
    trunk: Option<Mlp2>,
    time_head: Option<Mlp2>,
    dist_head: Option<Mlp2>,
    grid: Option<SpatialGrid>,
    slots: TimeSlots,
    /// Cloned road network kept for prediction-time OD matching.
    net: Option<RoadNetwork>,
    y_mean: f32,
    y_std: f32,
}

impl MuratPredictor {
    /// Creates an unfitted predictor. Errors when `cfg.slot_seconds` is
    /// not a usable slot size (non-positive or not a week divisor).
    pub fn new(cfg: MuratConfig) -> Result<Self, TimeSlotError> {
        let slots = TimeSlots::new(0.0, cfg.slot_seconds)?;
        Ok(MuratPredictor {
            cfg,
            store: ParamStore::new(),
            road_emb: None,
            slot_emb: None,
            trunk: None,
            time_head: None,
            dist_head: None,
            grid: None,
            slots,
            net: None,
            y_mean: 0.0,
            y_std: 1.0,
        })
    }

    /// Day-only slot node (MURAT's temporal granularity).
    fn day_node(&self, t: f64) -> usize {
        self.slots.week_node_of(t) % self.slots.slots_per_day()
    }

    /// Encodes an OD input to (origin edge, dest edge, slot node, extras);
    /// `None` if unmatched.
    fn encode(&self, net: &RoadNetwork, od: &OdInput) -> Option<(usize, usize, usize, Vec<f32>)> {
        let grid = self.grid.as_ref()?;
        let (oe, _) = grid.nearest_edge(net, &od.origin, 600.0)?;
        let (de, _) = grid.nearest_edge(net, &od.destination, 600.0)?;
        let extras = vec![
            (od.origin.dist(&od.destination) / 1000.0) as f32,
            self.slots.remainder_norm(od.depart),
        ];
        Some((oe.idx(), de.idx(), self.day_node(od.depart), extras))
    }

    fn forward_encoded(&mut self, enc: (usize, usize, usize, Vec<f32>)) -> f32 {
        let (oe, de, slot, extras) = enc;
        let (road, slot_emb, trunk, time_head) =
            match (&self.road_emb, &self.slot_emb, &self.trunk, &self.time_head) {
                (Some(r), Some(s), Some(t), Some(h)) => (*r, *s, *t, *h),
                _ => return 0.0,
            };
        let mut g = Graph::new();
        let e1 = road.lookup(&mut g, &self.store, oe);
        let en = road.lookup(&mut g, &self.store, de);
        let ts = slot_emb.lookup(&mut g, &self.store, slot);
        let ex = g.input(Tensor::from_vec(extras, &[2]));
        let cat = g.concat(&[e1, en, ts, ex]);
        let h = trunk.forward(&mut g, &self.store, cat);
        let y = time_head.forward(&mut g, &self.store, h);
        g.value(y).item() * self.y_std + self.y_mean
    }

    /// Undirected road graph over segments: links both ways between
    /// consecutive segments (the paper's criticism of MURAT's
    /// initialization — no directionality, no trajectory weighting).
    fn undirected_road_graph(net: &RoadNetwork) -> EmbedGraph {
        let mut g = EmbedGraph::with_nodes(net.num_edges());
        for (i, e) in net.edges().iter().enumerate() {
            for &next in net.out_edges(e.to) {
                if next.idx() != i {
                    g.add_link(i, next.idx(), 1.0);
                    g.add_link(next.idx(), i, 1.0);
                }
            }
        }
        g
    }

    /// Undirected day-ring temporal graph (no neighboring-day edges).
    fn undirected_day_graph(slots: &TimeSlots) -> EmbedGraph {
        let n = slots.slots_per_day();
        let mut g = EmbedGraph::with_nodes(n);
        for i in 0..n {
            let next = (i + 1) % n;
            g.add_link(i, next, 1.0);
            g.add_link(next, i, 1.0);
        }
        g
    }
}

impl TtePredictor for MuratPredictor {
    fn name(&self) -> &'static str {
        "MURAT"
    }

    fn fit(&mut self, ds: &CityDataset) {
        self.fit_with_validation(ds, 0);
    }

    fn predict(&mut self, od: &OdInput) -> Option<f32> {
        let net = self.net.clone()?;
        let enc = self.encode(&net, od)?;
        Some(self.forward_encoded(enc).max(0.0))
    }

    fn size_bytes(&self) -> usize {
        self.store.size_bytes()
    }
}

impl MuratPredictor {
    /// Fits while recording `(step, validation MAE)` points every
    /// `eval_every` optimizer steps — the Fig. 10 training-curve hook.
    pub fn fit_with_validation(
        &mut self,
        ds: &CityDataset,
        eval_every: usize,
    ) -> Vec<(usize, f32)> {
        let mut rng = deepod_tensor::rng_from_seed(self.cfg.seed);
        self.store = ParamStore::new();
        let grid = SpatialGrid::build(&ds.net, 250.0);

        let road_emb = Embedding::new(
            &mut self.store,
            "murat.roads",
            ds.net.num_edges(),
            self.cfg.emb_dim,
            &mut rng,
        );
        let slot_emb = Embedding::new(
            &mut self.store,
            "murat.slots",
            self.slots.slots_per_day(),
            self.cfg.emb_dim,
            &mut rng,
        );
        // Graph-embedding initialization on undirected graphs.
        let walk = WalkConfig {
            walks_per_node: 3,
            walk_length: 10,
            window: 3,
            ..Default::default()
        };
        let rg = Self::undirected_road_graph(&ds.net);
        road_emb.load_pretrained(
            &mut self.store,
            Node2Vec {
                cfg: walk.clone(),
                p: 1.0,
                q: 1.0,
            }
            .embed(&rg, self.cfg.emb_dim, &mut rng),
        );
        let tg = Self::undirected_day_graph(&self.slots);
        slot_emb.load_pretrained(
            &mut self.store,
            Node2Vec {
                cfg: walk,
                p: 1.0,
                q: 1.0,
            }
            .embed(&tg, self.cfg.emb_dim, &mut rng),
        );

        let in_dim = 3 * self.cfg.emb_dim + 2;
        let trunk = Mlp2::new(
            &mut self.store,
            "murat.trunk",
            in_dim,
            self.cfg.hidden,
            self.cfg.hidden,
            &mut rng,
        );
        let time_head = Mlp2::new(
            &mut self.store,
            "murat.time",
            self.cfg.hidden,
            self.cfg.hidden,
            1,
            &mut rng,
        );
        let dist_head = Mlp2::new(
            &mut self.store,
            "murat.dist",
            self.cfg.hidden,
            self.cfg.hidden,
            1,
            &mut rng,
        );
        // Standardize time labels so the network trains in O(1) units.
        let mean_y = ds.mean_train_travel_time() as f32;
        let var_y = ds
            .train
            .iter()
            .map(|o| {
                let d = o.travel_time as f32 - mean_y;
                d * d
            })
            .sum::<f32>()
            / ds.train.len().max(1) as f32;
        self.y_mean = mean_y;
        self.y_std = var_y.sqrt().max(1.0);

        // Pre-encode training samples.
        let encoded: Vec<_> = ds
            .train
            .iter()
            .filter_map(|o| {
                grid.nearest_edge(&ds.net, &o.od.origin, 600.0)
                    .and_then(|(oe, _)| {
                        grid.nearest_edge(&ds.net, &o.od.destination, 600.0)
                            .map(|(de, _)| {
                                let dist_km: f64 = o
                                    .trajectory
                                    .edges()
                                    .iter()
                                    .map(|&e| ds.net.edge(e).length)
                                    .sum::<f64>()
                                    / 1000.0;
                                (
                                    oe.idx(),
                                    de.idx(),
                                    self.day_node(o.od.depart),
                                    vec![
                                        (o.od.origin.dist(&o.od.destination) / 1000.0) as f32,
                                        self.slots.remainder_norm(o.od.depart),
                                    ],
                                    o.travel_time as f32,
                                    dist_km as f32,
                                )
                            })
                    })
            })
            .collect();

        // Publish layers before training so periodic validation works.
        self.grid = Some(grid);
        self.road_emb = Some(road_emb);
        self.slot_emb = Some(slot_emb);
        self.trunk = Some(trunk);
        self.time_head = Some(time_head);
        self.dist_head = Some(dist_head);
        self.net = Some(ds.net.clone());

        let mut curve = Vec::new();
        let mut step = 0usize;
        let mut opt = AdamOptimizer::new(self.cfg.lr);
        let mut order: Vec<usize> = (0..encoded.len()).collect();
        for epoch in 0..self.cfg.epochs {
            opt.set_lr(self.cfg.lr / 5.0f32.powi((epoch / 2) as i32));
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for chunk in order.chunks(self.cfg.batch_size) {
                let mut grads = deepod_nn::Gradients::new();
                for &idx in chunk {
                    let (oe, de, slot, ref extras, y, d) = encoded[idx];
                    let mut g = Graph::new();
                    let e1 = road_emb.lookup(&mut g, &self.store, oe);
                    let en = road_emb.lookup(&mut g, &self.store, de);
                    let tsv = slot_emb.lookup(&mut g, &self.store, slot);
                    let ex = g.input(Tensor::from_vec(extras.clone(), &[2]));
                    let cat = g.concat(&[e1, en, tsv, ex]);
                    let h = trunk.forward(&mut g, &self.store, cat);
                    let yp = time_head.forward(&mut g, &self.store, h);
                    let dp = dist_head.forward(&mut g, &self.store, h);
                    let y_norm = (y - self.y_mean) / self.y_std;
                    let yt = g.input(Tensor::from_vec(vec![y_norm], &[1]));
                    let dt = g.input(Tensor::from_vec(vec![d], &[1]));
                    let l_time = g.mean_abs_error(yp, yt);
                    let l_dist = g.mean_abs_error(dp, dt);
                    let l_dist_w = g.scale(l_dist, self.cfg.distance_weight);
                    let loss = g.add(l_time, l_dist_w);
                    grads.merge(g.backward(loss));
                }
                grads.scale(1.0 / chunk.len() as f32);
                grads.clip_global_norm(5.0);
                opt.step(&mut self.store, &grads);
                step += 1;
                if eval_every > 0 && step.is_multiple_of(eval_every) {
                    let n = ds.validation.len().min(256);
                    if n > 0 {
                        let mut acc = 0.0f32;
                        let mut m = 0usize;
                        for o in &ds.validation[..n] {
                            if let Some(e) = self.encode(&ds.net, &o.od) {
                                acc +=
                                    (self.forward_encoded(e).max(0.0) - o.travel_time as f32).abs();
                                m += 1;
                            }
                        }
                        if m > 0 {
                            curve.push((step, acc / m as f32));
                        }
                    }
                }
            }
        }

        self.road_emb = Some(road_emb);
        self.slot_emb = Some(slot_emb);
        self.trunk = Some(trunk);
        self.time_head = Some(time_head);
        self.dist_head = Some(dist_head);
        // Keep a copy of the network for prediction-time OD matching.
        self.net = Some(ds.net.clone());
        curve
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepod_roadnet::CityProfile;
    use deepod_traj::{DatasetBuilder, DatasetConfig};

    #[test]
    fn trains_and_beats_mean() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 250));
        let mut murat = MuratPredictor::new(MuratConfig {
            epochs: 16,
            ..Default::default()
        })
        .expect("valid slot size");
        murat.fit(&ds);
        let mean = ds.mean_train_travel_time() as f32;
        let mut mae = 0.0f32;
        let mut mae_mean = 0.0f32;
        let mut n = 0;
        for o in &ds.test {
            if let Some(p) = murat.predict(&o.od) {
                mae += (p - o.travel_time as f32).abs();
                mae_mean += (mean - o.travel_time as f32).abs();
                n += 1;
            }
        }
        assert!(n > 0);
        mae /= n as f32;
        mae_mean /= n as f32;
        assert!(
            mae < mae_mean,
            "MURAT {mae:.1} should beat mean {mae_mean:.1}"
        );
    }

    #[test]
    fn unfitted_returns_none() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 20));
        let mut murat = MuratPredictor::new(MuratConfig::default()).expect("valid slot size");
        assert!(murat.predict(&ds.train[0].od).is_none());
    }

    #[test]
    fn model_size_scales_with_network() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 60));
        let mut murat = MuratPredictor::new(MuratConfig {
            epochs: 1,
            ..Default::default()
        })
        .expect("valid slot size");
        murat.fit(&ds);
        // Road embedding alone: num_edges × emb_dim × 4 bytes.
        assert!(murat.size_bytes() > ds.net.num_edges() * 16 * 4);
    }
}

//! Route-based travel time estimation — the "floating-car data" family of
//! the paper's §7.1, built as an extension beyond its baseline set.
//!
//! The estimator learns per-segment speeds from historical trajectories,
//! bucketed by time-of-week, with a class-level fallback for unobserved
//! (segment, bucket) pairs. Prediction routes the query with a
//! time-dependent shortest path over those learned speeds and integrates
//! per-segment times — i.e. it uses the road network at *prediction* time,
//! which the paper's OD methods deliberately avoid (no route is known),
//! making this a strong "oracle-ish" reference point for EXPERIMENTS.md.

use crate::common::TtePredictor;
use deepod_roadnet::{time_dependent_route, EdgeId, RoadClass, RoadNetwork, SpatialGrid};
use deepod_traffic::SECONDS_PER_WEEK;
use deepod_traj::{CityDataset, OdInput};
use std::collections::HashMap;

/// Number of time-of-week buckets (2-hour resolution).
const BUCKETS: usize = 7 * 12;

/// Route-based TTE via learned per-segment speeds.
///
/// `Clone` is cheap relative to a refit and exists for the serve-side
/// supervisor, which rebuilds a fallback replica after a worker crash.
#[derive(Clone)]
pub struct RouteTtePredictor {
    /// Mean speed per (edge, bucket), m/s.
    speeds: HashMap<(u32, u16), f32>,
    /// Fallback: mean speed per (road class, bucket).
    class_speeds: HashMap<(u8, u16), f32>,
    /// Global fallback speed.
    global_speed: f32,
    net: Option<RoadNetwork>,
    grid: Option<SpatialGrid>,
}

fn bucket_of(t: f64) -> u16 {
    ((t.rem_euclid(SECONDS_PER_WEEK)) / (SECONDS_PER_WEEK / BUCKETS as f64)) as u16 % BUCKETS as u16
}

fn class_tag(c: RoadClass) -> u8 {
    match c {
        RoadClass::Highway => 0,
        RoadClass::Arterial => 1,
        RoadClass::Collector => 2,
        RoadClass::Local => 3,
    }
}

impl RouteTtePredictor {
    /// Creates an unfitted predictor.
    pub fn new() -> Self {
        RouteTtePredictor {
            speeds: HashMap::new(),
            class_speeds: HashMap::new(),
            global_speed: 10.0,
            net: None,
            grid: None,
        }
    }

    /// Learned speed for an edge entered at time `t`, with fallbacks.
    pub fn speed(&self, net: &RoadNetwork, e: EdgeId, t: f64) -> f32 {
        let b = bucket_of(t);
        if let Some(&v) = self.speeds.get(&(e.0, b)) {
            return v;
        }
        let tag = class_tag(net.edge(e).class);
        if let Some(&v) = self.class_speeds.get(&(tag, b)) {
            return v;
        }
        self.global_speed
    }

    /// Number of (segment, bucket) pairs with direct observations.
    pub fn observed_pairs(&self) -> usize {
        self.speeds.len()
    }
}

impl Default for RouteTtePredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl TtePredictor for RouteTtePredictor {
    fn name(&self) -> &'static str {
        "RouteTTE"
    }

    fn fit(&mut self, ds: &CityDataset) {
        let mut sums: HashMap<(u32, u16), (f64, u32)> = HashMap::new();
        let mut class_sums: HashMap<(u8, u16), (f64, u32)> = HashMap::new();
        let mut global = (0.0f64, 0u32);
        for o in &ds.train {
            for step in &o.trajectory.path {
                let dur = step.duration();
                if dur < 1.0 {
                    continue;
                }
                let v = ds.net.edge(step.edge).length / dur;
                if !(0.3..45.0).contains(&v) {
                    continue;
                }
                let b = bucket_of(step.enter);
                let e = sums.entry((step.edge.0, b)).or_insert((0.0, 0));
                e.0 += v;
                e.1 += 1;
                let tag = class_tag(ds.net.edge(step.edge).class);
                let c = class_sums.entry((tag, b)).or_insert((0.0, 0));
                c.0 += v;
                c.1 += 1;
                global.0 += v;
                global.1 += 1;
            }
        }
        self.speeds = sums
            .into_iter()
            .map(|(k, (s, n))| (k, (s / n as f64) as f32))
            .collect();
        self.class_speeds = class_sums
            .into_iter()
            .map(|(k, (s, n))| (k, (s / n as f64) as f32))
            .collect();
        if global.1 > 0 {
            self.global_speed = (global.0 / global.1 as f64) as f32;
        }
        self.grid = Some(SpatialGrid::build(&ds.net, 250.0));
        self.net = Some(ds.net.clone());
    }

    fn predict(&mut self, od: &OdInput) -> Option<f32> {
        let net = self.net.as_ref()?;
        let grid = self.grid.as_ref()?;
        let (oe, opr) = grid.nearest_edge(net, &od.origin, 600.0)?;
        let (de, dpr) = grid.nearest_edge(net, &od.destination, 600.0)?;

        // Route on learned time-dependent speeds, then integrate, adding
        // the partial first/last segments.
        let this = &*self;
        let route = time_dependent_route(
            net,
            net.edge(oe).to,
            net.edge(de).from,
            od.depart,
            |e, t| (net.edge(e).length / this.speed(net, e, t) as f64).max(0.5),
        )
        .ok()?;

        let head = net.edge(oe).length * (1.0 - opr.t) / self.speed(net, oe, od.depart) as f64;
        let tail_t = od.depart + head + route.cost;
        let tail = net.edge(de).length * dpr.t / self.speed(net, de, tail_t) as f64;
        Some((head + route.cost + tail) as f32)
    }

    fn size_bytes(&self) -> usize {
        self.speeds.len() * (6 + 4) + self.class_speeds.len() * (3 + 4) + 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepod_roadnet::CityProfile;
    use deepod_traj::{DatasetBuilder, DatasetConfig};

    #[test]
    fn beats_mean_predictor_comfortably() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 700));
        let mut p = RouteTtePredictor::new();
        p.fit(&ds);
        assert!(p.observed_pairs() > 100, "too few observations");

        let mean = ds.mean_train_travel_time() as f32;
        let mut mae = 0.0f32;
        let mut mae_mean = 0.0f32;
        let mut n = 0;
        for o in &ds.test {
            if let Some(pred) = p.predict(&o.od) {
                mae += (pred - o.travel_time as f32).abs();
                mae_mean += (mean - o.travel_time as f32).abs();
                n += 1;
            }
        }
        assert!(n > ds.test.len() / 2);
        mae /= n as f32;
        mae_mean /= n as f32;
        assert!(
            mae < mae_mean * 0.92,
            "RouteTTE {mae:.1} should clearly beat mean {mae_mean:.1}"
        );
    }

    #[test]
    fn unfitted_returns_none() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 20));
        let mut p = RouteTtePredictor::new();
        assert!(p.predict(&ds.train[0].od).is_none());
    }

    #[test]
    fn speed_fallback_chain() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 100));
        let mut p = RouteTtePredictor::new();
        p.fit(&ds);
        // Any edge at any time yields a positive, sane speed via fallbacks.
        for i in (0..ds.net.num_edges()).step_by(53) {
            let v = p.speed(&ds.net, EdgeId(i as u32), 1e7);
            assert!((0.3..45.0).contains(&v), "speed {v}");
        }
    }

    #[test]
    fn rush_hour_predictions_longer() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 500));
        let mut p = RouteTtePredictor::new();
        p.fit(&ds);
        // Same OD Tuesday 8 am vs 3 am — learned speeds must reflect rush.
        let mut od = ds.test[0].od;
        let day = 86_400.0;
        od.depart = day + 8.0 * 3600.0;
        let rush = p.predict(&od);
        od.depart = day + 3.0 * 3600.0;
        let night = p.predict(&od);
        if let (Some(r), Some(n)) = (rush, night) {
            assert!(r > n * 0.95, "rush {r:.0}s vs night {n:.0}s");
        }
    }

    #[test]
    fn bucket_wraps_weekly() {
        assert_eq!(bucket_of(100.0), bucket_of(100.0 + SECONDS_PER_WEEK));
        assert_ne!(bucket_of(0.0), bucket_of(3.0 * 7200.0));
    }
}

//! Ridge linear regression on the hand-crafted OD features — the paper's
//! LR baseline, solved in closed form via the normal equations with a
//! small in-crate Cholesky factorization.

use crate::common::{extract_features, TtePredictor, NUM_OD_FEATURES};
use deepod_traj::{CityDataset, OdInput};

/// Ridge regression `y ≈ wᵀx + b`.
pub struct LinearRegression {
    /// L2 regularization strength.
    pub lambda: f64,
    weights: Vec<f64>,
    bias: f64,
    fitted: bool,
}

impl LinearRegression {
    /// Creates an unfitted model with ridge strength `lambda`.
    pub fn new(lambda: f64) -> Self {
        LinearRegression {
            lambda,
            weights: vec![0.0; NUM_OD_FEATURES],
            bias: 0.0,
            fitted: false,
        }
    }

    /// The fitted weights (tests / diagnostics).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

/// Solves `A x = b` for symmetric positive-definite `A` (n×n, row-major)
/// via Cholesky. Panics when `A` is not SPD (cannot happen with a positive
/// ridge term).
fn cholesky_solve(a: &mut [f64], b: &mut [f64], n: usize) {
    // In-place LLᵀ factorization.
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[i * n + j];
            for k in 0..j {
                s -= a[i * n + k] * a[j * n + k];
            }
            if i == j {
                assert!(s > 0.0, "matrix not positive definite");
                a[i * n + j] = s.sqrt();
            } else {
                a[i * n + j] = s / a[j * n + j];
            }
        }
    }
    // Forward substitution L y = b.
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= a[i * n + k] * b[k];
        }
        b[i] = s / a[i * n + i];
    }
    // Back substitution Lᵀ x = y.
    for i in (0..n).rev() {
        let mut s = b[i];
        for k in (i + 1)..n {
            s -= a[k * n + i] * b[k];
        }
        b[i] = s / a[i * n + i];
    }
}

impl TtePredictor for LinearRegression {
    fn name(&self) -> &'static str {
        "LR"
    }

    fn fit(&mut self, ds: &CityDataset) {
        let n = NUM_OD_FEATURES + 1; // + bias column
        let mut xtx = vec![0.0f64; n * n];
        let mut xty = vec![0.0f64; n];
        for o in &ds.train {
            let mut f: Vec<f64> = extract_features(&o.od)
                .into_iter()
                .map(|v| v as f64)
                .collect();
            f.push(1.0);
            let y = o.travel_time;
            for i in 0..n {
                xty[i] += f[i] * y;
                for j in 0..n {
                    xtx[i * n + j] += f[i] * f[j];
                }
            }
        }
        for (i, d) in (0..n).map(|i| (i, i * n + i)) {
            // Don't regularize the bias.
            if i < NUM_OD_FEATURES {
                xtx[d] += self.lambda;
            } else {
                xtx[d] += 1e-9;
            }
        }
        cholesky_solve(&mut xtx, &mut xty, n);
        self.weights = xty[..NUM_OD_FEATURES].to_vec();
        self.bias = xty[NUM_OD_FEATURES];
        self.fitted = true;
    }

    fn predict(&mut self, od: &OdInput) -> Option<f32> {
        if !self.fitted {
            return None;
        }
        let f = extract_features(od);
        let y: f64 = self
            .weights
            .iter()
            .zip(&f)
            .map(|(&w, &x)| w * x as f64)
            .sum::<f64>()
            + self.bias;
        Some(y.max(0.0) as f32)
    }

    fn size_bytes(&self) -> usize {
        (self.weights.len() + 1) * size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepod_roadnet::CityProfile;
    use deepod_traj::{DatasetBuilder, DatasetConfig};

    #[test]
    fn cholesky_solves_known_system() {
        // A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5].
        let mut a = vec![4.0, 2.0, 2.0, 3.0];
        let mut b = vec![10.0, 8.0];
        cholesky_solve(&mut a, &mut b, 2);
        assert!((b[0] - 1.75).abs() < 1e-10);
        assert!((b[1] - 1.5).abs() < 1e-10);
    }

    #[test]
    fn recovers_linear_ground_truth() {
        // Synthetic labels that are exactly linear in the distance feature:
        // LR must recover them almost perfectly.
        let mut ds =
            DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 150));
        for o in &mut ds.train {
            let dist_km = o.od.origin.dist(&o.od.destination) / 1000.0;
            o.travel_time = 100.0 + 120.0 * dist_km;
        }
        let mut lr = LinearRegression::new(1e-6);
        lr.fit(&ds);
        for o in ds.train.iter().step_by(17) {
            let pred = lr.predict(&o.od).unwrap() as f64;
            assert!(
                (pred - o.travel_time).abs() < 2.0,
                "pred {pred:.1} vs truth {:.1}",
                o.travel_time
            );
        }
    }

    #[test]
    fn beats_mean_on_real_data() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 250));
        let mut lr = LinearRegression::new(1e-3);
        lr.fit(&ds);
        let mean = ds.mean_train_travel_time() as f32;
        let mae_lr: f32 = ds
            .test
            .iter()
            .map(|o| (lr.predict(&o.od).unwrap() - o.travel_time as f32).abs())
            .sum::<f32>()
            / ds.test.len() as f32;
        let mae_mean: f32 = ds
            .test
            .iter()
            .map(|o| (mean - o.travel_time as f32).abs())
            .sum::<f32>()
            / ds.test.len() as f32;
        assert!(
            mae_lr < mae_mean,
            "LR {mae_lr:.1} should beat mean {mae_mean:.1}"
        );
    }

    #[test]
    fn unfitted_returns_none_and_size_constant() {
        let mut lr = LinearRegression::new(1.0);
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 30));
        assert!(lr.predict(&ds.train[0].od).is_none());
        let size_before = lr.size_bytes();
        lr.fit(&ds);
        assert_eq!(lr.size_bytes(), size_before, "LR size is data-independent");
    }

    #[test]
    fn predictions_nonnegative() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 60));
        let mut lr = LinearRegression::new(1e-3);
        lr.fit(&ds);
        for o in &ds.test {
            assert!(lr.predict(&o.od).unwrap() >= 0.0);
        }
    }
}

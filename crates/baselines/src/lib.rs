//! Baseline OD travel-time estimators the paper compares against (§6.1):
//!
//! * [`TempPredictor`] — the non-learning nearest-neighbor method of Wang
//!   et al.: average the travel time of historical trips with a similar
//!   origin, destination and time slot.
//! * [`LinearRegression`] — ridge regression on hand-crafted OD features.
//! * [`GbmPredictor`] — gradient-boosted regression trees (our
//!   self-contained XGBoost stand-in).
//! * [`StnnPredictor`] — the deep model of Jindal et al.: one network
//!   predicts trip distance from the OD pair, a second combines the
//!   predicted distance with temporal features to predict travel time.
//! * [`MuratPredictor`] — the multi-task representation-learning model of
//!   Li et al.: road-segment and time-slot embeddings (undirected-graph
//!   initialization) feeding a joint travel-time + distance objective.
//!
//! All baselines implement [`TtePredictor`], so the evaluation harness
//! treats them and DeepOD uniformly.

mod common;
mod gbm;
mod linreg;
mod murat;
mod route_tte;
mod stnn;
mod temp;

pub use common::{extract_features, FeatureVec, TtePredictor, NUM_OD_FEATURES};
pub use gbm::{GbmConfig, GbmPredictor};
pub use linreg::LinearRegression;
pub use murat::{MuratConfig, MuratPredictor};
pub use route_tte::RouteTtePredictor;
pub use stnn::{StnnConfig, StnnPredictor};
pub use temp::{TempConfig, TempPredictor};

//! TEMP (Wang et al., SIGSPATIAL '16): a non-learning neighbor average —
//! for a query OD pair, average the travel time of historical trips whose
//! origin and destination both fall within a radius of the query's, in the
//! same time-of-week slot; widen the slot and radius when too few
//! neighbors exist.

use crate::common::TtePredictor;
use deepod_roadnet::Point;
use deepod_traffic::SECONDS_PER_WEEK;
use deepod_traj::{CityDataset, OdInput};

/// TEMP parameters.
#[derive(Clone, Debug)]
pub struct TempConfig {
    /// Endpoint match radius in meters.
    pub radius: f64,
    /// Time-slot width in seconds for temporal matching.
    pub slot_seconds: f64,
    /// Minimum neighbors before falling back to wider matching.
    pub min_neighbors: usize,
    /// Spatial bucket size of the internal index (meters).
    pub bucket: f64,
}

impl Default for TempConfig {
    fn default() -> Self {
        TempConfig {
            radius: 600.0,
            slot_seconds: 1800.0,
            min_neighbors: 3,
            bucket: 600.0,
        }
    }
}

#[derive(Clone, Copy)]
struct Record {
    origin: Point,
    destination: Point,
    week_slot: usize,
    travel_time: f32,
}

/// The TEMP predictor: stores all historical trip records in a spatial
/// hash over origins.
pub struct TempPredictor {
    cfg: TempConfig,
    records: Vec<Record>,
    /// Origin-bucket index: (bx, by) -> record indices.
    buckets: std::collections::HashMap<(i64, i64), Vec<u32>>,
    slots_per_week: usize,
}

impl TempPredictor {
    /// Creates an unfitted predictor.
    pub fn new(cfg: TempConfig) -> Self {
        let slots_per_week = deepod_tensor::round_count(SECONDS_PER_WEEK / cfg.slot_seconds);
        TempPredictor {
            cfg,
            records: Vec::new(),
            buckets: std::collections::HashMap::new(),
            slots_per_week,
        }
    }

    fn bucket_of(&self, p: &Point) -> (i64, i64) {
        (
            deepod_tensor::floor_coord(p.x / self.cfg.bucket),
            deepod_tensor::floor_coord(p.y / self.cfg.bucket),
        )
    }

    fn week_slot(&self, t: f64) -> usize {
        deepod_tensor::floor_index(t.rem_euclid(SECONDS_PER_WEEK) / self.cfg.slot_seconds)
            % self.slots_per_week
    }

    /// Circular slot distance on the weekly ring.
    fn slot_dist(&self, a: usize, b: usize) -> usize {
        let d = a.abs_diff(b);
        d.min(self.slots_per_week - d)
    }

    /// Collects neighbor travel times within `radius` and `slot_window`.
    fn neighbors(&self, od: &OdInput, radius: f64, slot_window: usize) -> Vec<f32> {
        let qslot = self.week_slot(od.depart);
        let (bx, by) = self.bucket_of(&od.origin);
        let reach = deepod_tensor::ceil_count(radius / self.cfg.bucket) as i64;
        let mut out = Vec::new();
        for dy in -reach..=reach {
            for dx in -reach..=reach {
                let Some(ids) = self.buckets.get(&(bx + dx, by + dy)) else {
                    continue;
                };
                for &i in ids {
                    let r = &self.records[i as usize];
                    if r.origin.dist(&od.origin) <= radius
                        && r.destination.dist(&od.destination) <= radius
                        && self.slot_dist(r.week_slot, qslot) <= slot_window
                    {
                        out.push(r.travel_time);
                    }
                }
            }
        }
        out
    }
}

impl TtePredictor for TempPredictor {
    fn name(&self) -> &'static str {
        "TEMP"
    }

    fn fit(&mut self, ds: &CityDataset) {
        self.records = ds
            .train
            .iter()
            .map(|o| Record {
                origin: o.od.origin,
                destination: o.od.destination,
                week_slot: self.week_slot(o.od.depart),
                travel_time: o.travel_time as f32,
            })
            .collect();
        self.buckets.clear();
        for (i, r) in self.records.iter().enumerate() {
            let key = (
                deepod_tensor::floor_coord(r.origin.x / self.cfg.bucket),
                deepod_tensor::floor_coord(r.origin.y / self.cfg.bucket),
            );
            self.buckets.entry(key).or_default().push(i as u32);
        }
    }

    fn predict(&mut self, od: &OdInput) -> Option<f32> {
        // Progressive widening: radius ×1, ×2, ×4 and slot window 0, 2, 8,
        // then all slots; finally give up to the global average.
        for (rmul, win) in [(1.0, 0), (1.0, 2), (2.0, 8), (4.0, self.slots_per_week)] {
            let ns = self.neighbors(od, self.cfg.radius * rmul, win);
            if ns.len() >= self.cfg.min_neighbors {
                return Some(ns.iter().sum::<f32>() / ns.len() as f32);
            }
        }
        if self.records.is_empty() {
            None
        } else {
            Some(
                self.records.iter().map(|r| r.travel_time).sum::<f32>() / self.records.len() as f32,
            )
        }
    }

    fn size_bytes(&self) -> usize {
        // TEMP must keep every historical trip resident (the paper's
        // Table 5 notes its size is proportional to the data).
        self.records.len() * size_of::<Record>()
            + self.buckets.len() * 24
            + self.buckets.values().map(|v| v.len() * 4).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepod_roadnet::CityProfile;
    use deepod_traj::{DatasetBuilder, DatasetConfig};

    fn fitted() -> (CityDataset, TempPredictor) {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 200));
        let mut p = TempPredictor::new(TempConfig::default());
        p.fit(&ds);
        (ds, p)
    }

    #[test]
    fn predicts_training_neighborhood() {
        let (ds, mut p) = fitted();
        // Querying a training OD exactly should find at least itself after
        // widening and produce a plausible time.
        let o = &ds.train[0];
        let pred = p.predict(&o.od).expect("TEMP should always fall back");
        assert!(pred > 0.0);
        let mean = ds.mean_train_travel_time() as f32;
        assert!(pred < mean * 5.0);
    }

    #[test]
    fn exact_repeat_trips_average() {
        // Two synthetic records at the same OD/slot: prediction = mean.
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 30));
        let mut p = TempPredictor::new(TempConfig {
            min_neighbors: 1,
            ..Default::default()
        });
        let mut clone_ds = ds;
        let a = clone_ds.train[0].clone();
        let mut b = a.clone();
        b.travel_time = a.travel_time + 100.0;
        clone_ds.train = vec![a.clone(), b];
        p.fit(&clone_ds);
        let pred = p.predict(&a.od).unwrap();
        assert!((pred - (a.travel_time as f32 + 50.0)).abs() < 1.0);
    }

    #[test]
    fn size_proportional_to_records() {
        let (ds, p) = fitted();
        assert!(p.size_bytes() >= ds.train.len() * size_of::<Record>());
    }

    #[test]
    fn far_query_falls_back_to_global_mean() {
        let (ds, mut p) = fitted();
        let mut od = ds.train[0].od;
        od.origin = Point::new(1e7, 1e7);
        od.destination = Point::new(1.1e7, 1.1e7);
        let pred = p.predict(&od).unwrap();
        let mean =
            ds.train.iter().map(|o| o.travel_time as f32).sum::<f32>() / ds.train.len() as f32;
        assert!((pred - mean).abs() < 1e-3);
    }

    #[test]
    fn unfitted_returns_none() {
        let mut p = TempPredictor::new(TempConfig::default());
        let od = OdInput {
            origin: Point::new(0.0, 0.0),
            destination: Point::new(100.0, 100.0),
            depart: 0.0,
            weather: deepod_traffic::WeatherType(0),
        };
        assert!(p.predict(&od).is_none());
    }
}

//! Serving-cache integration suite: drives the real `deepod precompute`
//! and `deepod serve` subcommands end to end and proves the DESIGN.md §15
//! contract:
//!
//! * a precomputed OD-oracle artifact answers its own canonical requests
//!   as cache hits (observable in the `--metrics` artifact) with the
//!   precomputed values;
//! * the in-process LRU tier answers repeated ODs bit-identically to the
//!   cacheless path — enabling the cache never changes a reply;
//! * entries expire when the wall clock crosses a `--cache-ttl-s` slot
//!   boundary (the `serve.cache_stale` counter fires);
//! * a corrupt or fingerprint-mismatched oracle is rejected at startup
//!   and serving continues cacheless, replying exactly as an uncached run;
//! * pre-epoch departures are rejected per request with a typed error
//!   line, without disturbing neighboring requests;
//! * with the cache tier off (the default), serving is bit-identical
//!   across runs.

use deepod_core::obs::registry::MetricsSnapshot;
use deepod_core::{DeepOdConfig, DeepOdModel, EmbeddingInit, FeatureContext};
use deepod_roadnet::CityProfile;
use deepod_traj::{CityDataset, DatasetBuilder, DatasetConfig};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::sync::OnceLock;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_deepod")
}

struct Setup {
    dir: PathBuf,
    data: String,
    model: String,
    oracle: String,
    ds: CityDataset,
}

impl Setup {
    fn path(&self, name: &str) -> String {
        self.dir.join(name).display().to_string()
    }
}

/// Built once: a simulated city + saved model (as in the serve suite),
/// plus an oracle artifact precomputed through the real CLI subcommand.
fn setup() -> &'static Setup {
    static SETUP: OnceLock<Setup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let dir: PathBuf =
            std::env::temp_dir().join(format!("deepod_serve_cache_suite_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("suite temp dir");
        let data = dir.join("city.json").display().to_string();
        let out = Command::new(bin())
            .args([
                "simulate",
                "--profile",
                "chengdu",
                "--orders",
                "60",
                "--out",
                &data,
            ])
            .output()
            .expect("spawn deepod binary");
        assert!(
            out.status.success(),
            "simulate failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 60));
        let cfg = DeepOdConfig {
            init: EmbeddingInit::Random,
            ds: 6,
            dt_dim: 6,
            d1m: 8,
            d2m: 6,
            d3m: 8,
            d4m: 6,
            d5m: 8,
            d6m: 6,
            d7m: 8,
            d9m: 8,
            dh: 8,
            dtraf: 4,
            ..DeepOdConfig::default()
        };
        let ctx = FeatureContext::build(&ds, cfg.slot_seconds).expect("valid slot size");
        let model_json = DeepOdModel::new(&cfg, &ds, &ctx)
            .expect("valid test config")
            .save_json()
            .expect("serializable model");
        let model = dir.join("model.json").display().to_string();
        std::fs::write(&model, model_json).expect("write model file");
        // Precompute the oracle through the real subcommand so the
        // artifact on disk is exactly what operators would ship.
        let oracle = dir.join("oracle.json").display().to_string();
        let out = Command::new(bin())
            .args([
                "precompute",
                "--data",
                &data,
                "--model",
                &model,
                "--out",
                &oracle,
                "--cells",
                "3",
                "--slots",
                "2",
            ])
            .output()
            .expect("spawn deepod precompute");
        assert!(
            out.status.success(),
            "precompute failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        Setup {
            dir,
            data,
            model,
            oracle,
            ds,
        }
    })
}

/// One request line for the i-th train order (ODs known to match the
/// road network).
fn request_line(s: &Setup, id: usize) -> String {
    let od = &s.ds.train[id % s.ds.train.len()].od;
    od_line(
        id as u64,
        od.origin.x,
        od.origin.y,
        od.destination.x,
        od.destination.y,
        od.depart,
    )
}

fn od_line(id: u64, fx: f64, fy: f64, tx: f64, ty: f64, depart: f64) -> String {
    format!("{{\"id\": {id}, \"from\": [{fx}, {fy}], \"to\": [{tx}, {ty}], \"depart\": {depart}}}")
}

/// Runs `deepod serve` feeding `chunks` on stdin, sleeping the given
/// number of milliseconds after each chunk (for TTL-expiry tests).
fn run_serve_chunked(extra_args: &[&str], model: &str, chunks: Vec<(String, u64)>) -> Output {
    let s = setup();
    let mut child = Command::new(bin())
        .args(["serve", "--data", &s.data, "--model", model])
        .args(extra_args)
        .env("DEEPOD_LOG", "off")
        .env_remove("DEEPOD_ORACLE")
        .env_remove("DEEPOD_CACHE_CAPACITY")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn deepod serve");
    let mut stdin = child.stdin.take().expect("piped stdin");
    let writer = std::thread::spawn(move || {
        for (chunk, sleep_ms) in chunks {
            if stdin.write_all(chunk.as_bytes()).is_err() {
                return; // server gone; wait_with_output reports how
            }
            let _ = stdin.flush();
            if sleep_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(sleep_ms));
            }
        }
        // Dropping stdin closes the pipe: the EOF that shuts serve down.
    });
    let out = child.wait_with_output().expect("serve terminates at EOF");
    writer.join().expect("writer thread");
    out
}

fn run_serve(extra_args: &[&str], model: &str, input: String) -> Output {
    run_serve_chunked(extra_args, model, vec![(input, 0)])
}

fn stdout_lines(out: &Output) -> Vec<String> {
    assert!(
        out.status.success(),
        "serve exited {:?}: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone())
        .expect("utf8 stdout")
        .lines()
        .map(str::to_owned)
        .collect()
}

fn read_metrics(path: &str) -> MetricsSnapshot {
    let payload = deepod_core::io_guard::read_checksummed(Path::new(path))
        .expect("metrics artifact passes checksum verification");
    let text = String::from_utf8(payload).expect("metrics artifact is utf-8");
    MetricsSnapshot::from_json(&text).expect("metrics artifact parses")
}

fn counter(snap: &MetricsSnapshot, name: &str) -> u64 {
    *snap
        .counters
        .get(name)
        .unwrap_or_else(|| panic!("counter {name} missing from metrics artifact"))
}

/// Field access without caring about float formatting: returns the raw
/// `"eta_s":<...>` fragment so bit-identical replies compare equal.
fn eta_fragment(line: &str) -> &str {
    let start = line.find("\"eta_s\":").unwrap_or_else(|| {
        panic!("reply line carries no eta_s: {line}");
    });
    let rest = &line[start..];
    rest.split(',').next().expect("eta fragment")
}

#[test]
fn oracle_hits_answer_canonical_requests_with_precomputed_values() {
    let s = setup();
    // Build the oracle's own canonical requests from the shipped artifact
    // — these must all be cache hits, answered with the stored values.
    let oracle = deepod_core::OdOracle::load(Path::new(&s.oracle)).expect("oracle loads");
    assert!(!oracle.entries.is_empty(), "precompute produced entries");
    let input: String = oracle
        .entries
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let od = oracle.keyer.canonical_od(e.key, &s.ds);
            od_line(
                i as u64,
                od.origin.x,
                od.origin.y,
                od.destination.x,
                od.destination.y,
                od.depart,
            ) + "\n"
        })
        .collect();
    let metrics = s.path("oracle_hits_metrics.json");
    let out = run_serve(
        &["--oracle", &s.oracle, "--metrics", &metrics],
        &s.model,
        input,
    );
    let lines = stdout_lines(&out);
    assert_eq!(lines.len(), oracle.entries.len());
    for (line, entry) in lines.iter().zip(&oracle.entries) {
        let want = format!("\"eta_s\":{:.1}", entry.eta_seconds);
        assert!(
            line.contains(&want) && line.contains("\"degraded\":false"),
            "expected precomputed {want} in {line}"
        );
    }
    let snap = read_metrics(&metrics);
    assert_eq!(
        counter(&snap, "serve.cache_hits"),
        oracle.entries.len() as u64,
        "every canonical request hits the oracle tier"
    );
    assert_eq!(counter(&snap, "serve.cache_misses"), 0);
}

#[test]
fn lru_tier_answers_repeats_bit_identically_to_the_cacheless_path() {
    let s = setup();
    const N: usize = 16;
    // The same N ODs twice, under fresh ids the second time: the repeats
    // must be LRU hits, and every reply must match the cacheless run.
    let half = |base: usize| -> String {
        (0..N)
            .map(|i| {
                let od = &s.ds.train[i].od;
                od_line(
                    (base + i) as u64,
                    od.origin.x,
                    od.origin.y,
                    od.destination.x,
                    od.destination.y,
                    od.depart,
                ) + "\n"
            })
            .collect()
    };
    let metrics = s.path("lru_metrics.json");
    // Week-long TTL slots: the wall clock cannot cross a boundary inside
    // one test run, so hit counts below are deterministic. The pause
    // between the halves lets the workers drain and populate the cache —
    // a repeat that races its original through the queue is a legitimate
    // miss, which is exactly what this test must not depend on.
    let cached = run_serve_chunked(
        &[
            "--cache-capacity",
            "256",
            "--cache-ttl-s",
            "604800",
            "--metrics",
            &metrics,
        ],
        &s.model,
        vec![(half(0), 2000), (half(N), 0)],
    );
    let plain = run_serve(&[], &s.model, half(0) + &half(N));
    let cached_lines = stdout_lines(&cached);
    let plain_lines = stdout_lines(&plain);
    assert_eq!(cached_lines.len(), 2 * N);
    assert_eq!(plain_lines.len(), 2 * N);
    for (c, p) in cached_lines.iter().zip(&plain_lines) {
        assert_eq!(
            eta_fragment(c),
            eta_fragment(p),
            "enabling the cache must not change any reply"
        );
    }
    for i in 0..N {
        assert_eq!(
            eta_fragment(&cached_lines[i]),
            eta_fragment(&cached_lines[i + N]),
            "a repeat answered from cache matches its first answer"
        );
    }
    let snap = read_metrics(&metrics);
    assert_eq!(counter(&snap, "serve.cache_misses"), N as u64);
    assert_eq!(
        counter(&snap, "serve.cache_hits"),
        N as u64,
        "each repeated OD is served from the LRU tier"
    );
}

#[test]
fn ttl_slot_rollover_expires_lru_entries() {
    let s = setup();
    let line = request_line(s, 0) + "\n";
    let metrics = s.path("ttl_metrics.json");
    // 1-second TTL slots; 2.5s between the two sends guarantees the wall
    // slot advanced, so the repeat finds its entry stale.
    let out = run_serve_chunked(
        &[
            "--cache-capacity",
            "8",
            "--cache-ttl-s",
            "1",
            "--metrics",
            &metrics,
        ],
        &s.model,
        vec![(line.clone(), 2500), (line, 0)],
    );
    let lines = stdout_lines(&out);
    assert_eq!(lines.len(), 2);
    assert_eq!(
        eta_fragment(&lines[0]),
        eta_fragment(&lines[1]),
        "expiry re-computes the same deterministic answer"
    );
    let snap = read_metrics(&metrics);
    assert!(
        counter(&snap, "serve.cache_stale") >= 1,
        "the repeat crossed a TTL slot boundary and evicted the entry"
    );
    assert_eq!(counter(&snap, "serve.cache_hits"), 0);
}

#[test]
fn corrupt_oracle_is_rejected_and_serving_continues_cacheless() {
    let s = setup();
    let corrupt = s.path("corrupt_oracle.json");
    std::fs::write(&corrupt, "definitely not a checksummed artifact").expect("write corrupt file");
    let input: String = (0..6).map(|i| request_line(s, i) + "\n").collect();
    let metrics = s.path("corrupt_oracle_metrics.json");
    let with = run_serve(
        &["--oracle", &corrupt, "--metrics", &metrics],
        &s.model,
        input.clone(),
    );
    let without = run_serve(&[], &s.model, input);
    assert_eq!(
        stdout_lines(&with),
        stdout_lines(&without),
        "a rejected oracle leaves serving exactly cacheless"
    );
    let snap = read_metrics(&metrics);
    assert_eq!(counter(&snap, "serve.cache_hits"), 0);
    assert_eq!(
        counter(&snap, "serve.cache_misses"),
        0,
        "the tier is fully off, not merely empty"
    );
}

#[test]
fn fingerprint_mismatched_oracle_is_rejected_at_startup() {
    let s = setup();
    // Same artifact, wrong model identity: re-stamp the fingerprint via
    // the real save path (the artifact is checksummed, so a byte-edit
    // would be rejected as corruption rather than as a mismatch).
    let mut oracle = deepod_core::OdOracle::load(Path::new(&s.oracle)).expect("oracle loads");
    oracle.model_fingerprint = "0123456789abcdef".into();
    let stale = s.path("stale_oracle.json");
    oracle
        .save(Path::new(&stale))
        .expect("save re-stamped oracle");
    let input: String = (0..6).map(|i| request_line(s, i) + "\n").collect();
    let metrics = s.path("stale_oracle_metrics.json");
    let out = run_serve(
        &["--oracle", &stale, "--metrics", &metrics],
        &s.model,
        input,
    );
    assert_eq!(stdout_lines(&out).len(), 6, "serving continues cacheless");
    let snap = read_metrics(&metrics);
    assert_eq!(
        counter(&snap, "serve.cache_hits") + counter(&snap, "serve.cache_misses"),
        0,
        "a mismatched oracle must not serve (or even consult) answers"
    );
}

#[test]
fn pre_epoch_departures_get_typed_rejections_in_a_mixed_stream() {
    let s = setup();
    let od = &s.ds.train[0].od;
    let input = format!(
        "{}\n{}\n{}\n",
        request_line(s, 0),
        od_line(
            1,
            od.origin.x,
            od.origin.y,
            od.destination.x,
            od.destination.y,
            -5.0
        ),
        request_line(s, 2),
    );
    let out = run_serve(
        &["--cache-capacity", "64", "--oracle", &s.oracle],
        &s.model,
        input,
    );
    let lines = stdout_lines(&out);
    assert_eq!(lines.len(), 3, "exactly one reply per request line");
    assert!(
        lines[0].contains("\"eta_s\":"),
        "neighbor answered: {}",
        lines[0]
    );
    assert!(
        lines[1].contains("\"id\":1") && lines[1].contains("before the dataset epoch"),
        "pre-epoch depart gets a typed per-request error: {}",
        lines[1]
    );
    assert!(
        lines[2].contains("\"eta_s\":"),
        "stream continues: {}",
        lines[2]
    );
}

#[test]
fn cacheless_serving_is_bit_identical_across_runs() {
    let s = setup();
    let input: String = (0..24).map(|i| request_line(s, i) + "\n").collect();
    let a = run_serve(&[], &s.model, input.clone());
    let b = run_serve(&[], &s.model, input);
    assert_eq!(
        stdout_lines(&a),
        stdout_lines(&b),
        "defaults (no oracle, capacity 0) stay bit-identical cross-run"
    );
}

//! TCP serving integration suite: drives the real `deepod serve --listen`
//! subcommand over loopback sockets and proves the DESIGN.md §16 contract
//! end to end:
//!
//! * N concurrent clients each get exactly one reply per request, in
//!   their own submission order, matched by correlation id;
//! * a greedy pipelining client is shed with typed `in_flight_limit`
//!   rejects while a polite client on the same server stays all-Ok;
//! * malformed, oversized, and unknown-version frames get typed replies
//!   without killing the connection they arrived on;
//! * closing the server's stdin drains every owed reply before sockets
//!   close;
//! * stdin mode stays byte-identical across runs (the pre-TCP wire
//!   contract);
//! * worker-crash chaos failpoints never lose or duplicate a reply.

use deepod_core::{DeepOdConfig, DeepOdModel, EmbeddingInit, FeatureContext};
use deepod_roadnet::CityProfile;
use deepod_serve::{ErrorKind, ServeClient, WireRequest, WireResponse};
use deepod_traj::{CityDataset, DatasetBuilder, DatasetConfig};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::OnceLock;
use std::time::Duration;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_deepod")
}

struct Setup {
    data: String,
    model: String,
    ds: CityDataset,
}

/// Built once, exactly like the stdin suite: a simulated city written
/// through the CLI and an untrained-but-valid model saved through the
/// real serializer.
fn setup() -> &'static Setup {
    static SETUP: OnceLock<Setup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let dir: PathBuf =
            std::env::temp_dir().join(format!("deepod_serve_net_suite_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("suite temp dir");
        let data = dir.join("city.json").display().to_string();
        let out = Command::new(bin())
            .args([
                "simulate",
                "--profile",
                "chengdu",
                "--orders",
                "60",
                "--out",
                &data,
            ])
            .output()
            .expect("spawn deepod binary");
        assert!(
            out.status.success(),
            "simulate failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 60));
        let cfg = DeepOdConfig {
            init: EmbeddingInit::Random,
            ds: 6,
            dt_dim: 6,
            d1m: 8,
            d2m: 6,
            d3m: 8,
            d4m: 6,
            d5m: 8,
            d6m: 6,
            d7m: 8,
            d9m: 8,
            dh: 8,
            dtraf: 4,
            ..DeepOdConfig::default()
        };
        let ctx = FeatureContext::build(&ds, cfg.slot_seconds).expect("valid slot size");
        let model_json = DeepOdModel::new(&cfg, &ds, &ctx)
            .expect("valid test config")
            .save_json()
            .expect("serializable model");
        let model = dir.join("model.json").display().to_string();
        std::fs::write(&model, model_json).expect("write model file");
        Setup { data, model, ds }
    })
}

/// One wire request replaying the i-th train order (ODs known to match
/// the road network) under the given correlation id.
fn request(s: &Setup, i: usize, id: u64) -> WireRequest {
    let od = &s.ds.train[i % s.ds.train.len()].od;
    WireRequest {
        id,
        from: (od.origin.x, od.origin.y),
        to: (od.destination.x, od.destination.y),
        depart: od.depart,
        low_priority: false,
    }
}

/// A running `deepod serve --listen` child. Its stdin is the lifecycle
/// handle: dropping it (via [`Server::shutdown`]) tells the server to
/// drain and exit — the same contract a supervising parent uses.
struct Server {
    child: Child,
    stdin: Option<ChildStdin>,
    stdout: BufReader<ChildStdout>,
    addr: String,
}

impl Server {
    fn start(extra_args: &[&str], envs: &[(&str, &str)]) -> Server {
        let s = setup();
        let mut cmd = Command::new(bin());
        cmd.args([
            "serve",
            "--data",
            &s.data,
            "--model",
            &s.model,
            "--listen",
            "127.0.0.1:0",
        ])
        .args(extra_args)
        .env("DEEPOD_LOG", "off")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn deepod serve --listen");
        let stdin = child.stdin.take().expect("piped stdin");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        // First stdout line announces the resolved ephemeral address.
        let mut line = String::new();
        stdout.read_line(&mut line).expect("listening announcement");
        let addr = line
            .trim()
            .strip_prefix("{\"listening\":\"")
            .and_then(|rest| rest.strip_suffix("\"}"))
            .unwrap_or_else(|| panic!("unexpected announcement line {line:?}"))
            .to_string();
        Server {
            child,
            stdin: Some(stdin),
            stdout,
            addr,
        }
    }

    /// Closes the lifecycle stdin and waits for a clean exit.
    fn shutdown(mut self) {
        drop(self.stdin.take());
        let status = self.child.wait().expect("serve child exits");
        // Drain remaining stdout so the child never blocked on the pipe.
        let mut rest = String::new();
        let _ = self.stdout.read_to_string(&mut rest);
        assert!(
            status.success(),
            "serve --listen exited {:?}",
            status.code()
        );
    }

    /// Shutdown variant for chaos runs, where injected worker panics may
    /// legitimately turn the exit code nonzero.
    fn shutdown_lenient(mut self) {
        drop(self.stdin.take());
        let _ = self.child.wait().expect("serve child exits");
    }
}

use std::io::Read;

#[test]
fn concurrent_clients_each_get_every_reply_exactly_once() {
    let server = Server::start(&["--workers", "2"], &[]);
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 25;
    let addr = server.addr.clone();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let s = setup();
                let mut client = ServeClient::connect(&addr).expect("connect");
                let reqs: Vec<WireRequest> = (0..PER_CLIENT)
                    .map(|i| request(s, c * PER_CLIENT + i, (c * PER_CLIENT + i) as u64))
                    .collect();
                let replies = client.send_batch(&reqs).expect("batch round trip");
                assert_eq!(replies.len(), PER_CLIENT);
                let mut seen = std::collections::BTreeSet::new();
                for (req, reply) in reqs.iter().zip(&replies) {
                    match reply {
                        WireResponse::Ok {
                            id,
                            eta_seconds,
                            degraded,
                        } => {
                            assert_eq!(*id, req.id, "replies in submission order");
                            assert!(!degraded, "real model is not degraded");
                            assert!(
                                eta_seconds.is_finite() && *eta_seconds >= 0.0,
                                "sane ETA, got {eta_seconds}"
                            );
                            assert!(seen.insert(*id), "id {id} answered twice");
                        }
                        WireResponse::Err { id, error } => {
                            panic!(
                                "request {id:?} failed: {} {}",
                                error.kind.as_str(),
                                error.msg
                            )
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    server.shutdown();
}

#[test]
fn greedy_client_is_shed_without_starving_a_polite_one() {
    let s = setup();
    let server = Server::start(
        &[
            "--max-in-flight",
            "4",
            "--queue",
            "64",
            "--max-wait-ms",
            "20",
        ],
        &[],
    );

    // The greedy client pipelines far past its in-flight cap without
    // reading a single reply.
    let greedy = ServeClient::connect(&server.addr).expect("connect greedy");
    let (mut tx, mut rx) = greedy.split();
    const GREEDY_N: usize = 200;
    for i in 0..GREEDY_N {
        tx.send(&request(s, i, i as u64)).expect("greedy send");
    }

    // Meanwhile a polite lock-step client on the same server must see
    // zero rejects: the greedy client's overflow is charged to its own
    // connection, not to the shared engine.
    let mut polite = ServeClient::connect(&server.addr).expect("connect polite");
    for i in 0..20 {
        let req = request(s, i, 10_000 + i as u64);
        polite.send(&req).expect("polite send");
        match polite.recv().expect("polite recv") {
            WireResponse::Ok { id, .. } => assert_eq!(id, req.id),
            WireResponse::Err { id, error } => panic!(
                "polite client must not be shed, got {:?} for {id:?}: {}",
                error.kind.as_str(),
                error.msg
            ),
        }
    }

    // The greedy client still gets exactly one reply per frame — answers
    // within the cap, typed `in_flight_limit` rejects beyond it.
    rx.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set timeout");
    let mut answered = 0usize;
    let mut shed = 0usize;
    for _ in 0..GREEDY_N {
        match rx.recv().expect("greedy recv") {
            WireResponse::Ok { .. } => answered += 1,
            WireResponse::Err { error, .. } => {
                assert_eq!(
                    error.kind,
                    ErrorKind::InFlightLimit,
                    "unexpected reject: {}",
                    error.msg
                );
                shed += 1;
            }
        }
    }
    assert!(answered > 0, "the cap admits up to 4 in flight");
    assert!(
        shed > 0,
        "pipelining {GREEDY_N} frames past a cap of 4 must shed"
    );
    tx.finish().expect("close write half");
    server.shutdown();
}

#[test]
fn protocol_rejects_are_typed_and_do_not_kill_the_connection() {
    let s = setup();
    let server = Server::start(&["--max-frame-bytes", "1024"], &[]);
    let stream = std::net::TcpStream::connect(&server.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    let mut send_raw = |frame: &str| {
        writer.write_all(frame.as_bytes()).expect("send frame");
        writer.write_all(b"\n").expect("send newline");
    };
    let mut recv = || {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read reply");
        WireResponse::parse(line.trim_end()).unwrap_or_else(|e| panic!("bad reply {line:?}: {e}"))
    };

    // Malformed JSON: flat legacy error with no id to echo.
    send_raw("this is not json");
    match recv() {
        WireResponse::Err { id: None, error } => {
            assert_eq!(error.kind, ErrorKind::BadRequest);
            assert!(error.msg.contains("JSON"), "got {}", error.msg);
        }
        other => panic!("malformed frame must fail flat, got {other:?}"),
    }

    // Oversized frame: typed structured reject, connection survives.
    let huge = format!("{{\"id\": 1, \"pad\": \"{}\"}}", "x".repeat(4096));
    send_raw(&huge);
    match recv() {
        WireResponse::Err { error, .. } => {
            assert_eq!(error.kind, ErrorKind::FrameTooLarge, "got {}", error.msg)
        }
        other => panic!("oversized frame must be rejected, got {other:?}"),
    }

    // Unknown protocol version: typed structured reject.
    send_raw("{\"v\": 2, \"id\": 5, \"from\": [0, 0], \"to\": [1, 1], \"depart\": 0}");
    match recv() {
        WireResponse::Err { error, .. } => {
            assert_eq!(
                error.kind,
                ErrorKind::UnsupportedVersion,
                "got {}",
                error.msg
            )
        }
        other => panic!("v2 frame must be rejected, got {other:?}"),
    }

    // The same connection still answers a well-formed v1 frame.
    let req = request(s, 0, 42);
    let mut line = req.to_line();
    line.push('\n');
    writer.write_all(line.as_bytes()).expect("send good frame");
    match recv() {
        WireResponse::Ok { id, .. } => assert_eq!(id, 42, "connection survived the rejects"),
        other => panic!("good frame after rejects must answer, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn closing_server_stdin_drains_every_owed_reply() {
    let s = setup();
    // Slow the first batch down so replies are still owed when the
    // shutdown signal lands.
    let server = Server::start(
        &["--max-batch", "2"],
        &[("DEEPOD_FAILPOINTS", "serve::slow_batch:1:sleep=300")],
    );
    let client = ServeClient::connect(&server.addr).expect("connect");
    let (mut tx, mut rx) = client.split();
    const K: usize = 6;
    for i in 0..K {
        tx.send(&request(s, i, i as u64)).expect("send");
    }
    // Give the reader a moment to submit the frames, then trigger
    // shutdown while they are still in flight behind the slow batch.
    std::thread::sleep(Duration::from_millis(100));
    let drained = std::thread::spawn(move || {
        rx.set_read_timeout(Some(Duration::from_secs(30)))
            .expect("set timeout");
        let mut ids = Vec::new();
        for _ in 0..K {
            match rx.recv().expect("owed reply before the socket closes") {
                WireResponse::Ok { id, .. } => ids.push(id),
                WireResponse::Err { id, error } => {
                    panic!("reply {id:?} failed during drain: {}", error.msg)
                }
            }
        }
        ids
    });
    server.shutdown();
    let ids = drained.join().expect("drain thread");
    assert_eq!(
        ids,
        (0..K as u64).collect::<Vec<_>>(),
        "every submitted frame answered, in order, before close"
    );
    let _ = tx.finish();
}

#[test]
fn stdin_mode_is_byte_identical_across_runs() {
    let s = setup();
    let input: String = (0..40)
        .map(|i| {
            let od = &s.ds.train[i % s.ds.train.len()].od;
            format!(
                "{{\"id\": {i}, \"from\": [{}, {}], \"to\": [{}, {}], \"depart\": {}}}\n",
                od.origin.x, od.origin.y, od.destination.x, od.destination.y, od.depart
            )
        })
        .collect();
    let run = |input: &str| {
        let mut child = Command::new(bin())
            .args(["serve", "--data", &s.data, "--model", &s.model])
            .env("DEEPOD_LOG", "off")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn deepod serve");
        let mut stdin = child.stdin.take().expect("piped stdin");
        stdin.write_all(input.as_bytes()).expect("feed stdin");
        drop(stdin);
        let out = child.wait_with_output().expect("serve terminates at EOF");
        assert!(out.status.success());
        out.stdout
    };
    let a = run(&input);
    let b = run(&input);
    assert_eq!(a, b, "stdin serving must stay deterministic");
    // And each frame keeps the exact pre-versioning flat shape.
    let text = String::from_utf8(a).expect("utf8 stdout");
    for (i, line) in text.lines().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"id\":{i},\"eta_s\":"))
                && line.ends_with(",\"degraded\":false}"),
            "frame shape drifted: {line:?}"
        );
    }
}

#[test]
fn worker_crash_chaos_never_loses_or_duplicates_replies() {
    let server = Server::start(
        &["--workers", "2", "--retry-budget", "2", "--max-batch", "4"],
        &[("DEEPOD_FAILPOINTS", "serve::worker_batch:3:panic")],
    );
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 30;
    let addr = server.addr.clone();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let s = setup();
                let mut client = ServeClient::connect(&addr).expect("connect");
                client
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .expect("set timeout");
                let mut ok = 0usize;
                let mut errs = 0usize;
                for i in 0..PER_CLIENT {
                    let req = request(s, c * PER_CLIENT + i, i as u64);
                    client.send(&req).expect("send");
                    // Exactly one reply per frame — an answer, or a typed
                    // crash/shed error, but never silence and never two.
                    match client.recv().expect("one reply per request") {
                        WireResponse::Ok { id, .. } => {
                            assert_eq!(id, req.id, "ids stay matched under chaos");
                            ok += 1;
                        }
                        WireResponse::Err { id, .. } => {
                            assert_eq!(id, Some(req.id), "errors echo their id");
                            errs += 1;
                        }
                    }
                }
                (ok, errs)
            })
        })
        .collect();
    let mut total_ok = 0usize;
    for h in handles {
        let (ok, _errs) = h.join().expect("client thread");
        total_ok += ok;
    }
    assert!(
        total_ok > 0,
        "retries past injected panics still answer requests"
    );
    server.shutdown_lenient();
}

//! Chaos suite for the fault-tolerant serving engine: drives the real
//! `deepod serve` binary with `DEEPOD_FAILPOINTS` injecting worker
//! panics, slow batches, and dropped replies, and proves the DESIGN.md
//! §14 contract under each fault:
//!
//! * **exactly one reply per request, never a hang** — a crashed worker
//!   turns its in-flight batch into typed `worker crashed` error lines
//!   (or, with a retry budget, into answered requests), and the process
//!   still drains cleanly at EOF;
//! * **supervision is observable** — `serve.worker_restarts` counts every
//!   panic the supervisor absorbed, `serve.retries` every requeue;
//! * **deadlines shed stale work** — a slow batch makes queued requests
//!   miss `--deadline-ms` and they are swept with typed errors, counted
//!   in `serve.deadline_expired`;
//! * **the default single-worker configuration is unchanged** — `--workers
//!   1 --deadline-ms 0 --retry-budget 0` produces bit-identical output
//!   across runs, and `--workers 4` the same answers.

use deepod_core::obs::registry::MetricsSnapshot;
use deepod_core::{DeepOdConfig, DeepOdModel, EmbeddingInit, FeatureContext};
use deepod_roadnet::CityProfile;
use deepod_traj::{CityDataset, DatasetBuilder, DatasetConfig};
use serde::json::{self, Value};
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};
use std::sync::OnceLock;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_deepod")
}

struct Setup {
    dir: PathBuf,
    data: String,
    model: String,
    ds: CityDataset,
}

/// Built once per process: a simulated city and an untrained-but-valid
/// model, exactly like the plain serving suite — chaos behavior does not
/// depend on model quality.
fn setup() -> &'static Setup {
    static SETUP: OnceLock<Setup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let dir: PathBuf =
            std::env::temp_dir().join(format!("deepod_serve_chaos_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("suite temp dir");
        let data = dir.join("city.json").display().to_string();
        let out = Command::new(bin())
            .args([
                "simulate",
                "--profile",
                "chengdu",
                "--orders",
                "60",
                "--out",
                &data,
            ])
            .output()
            .expect("spawn deepod binary");
        assert!(
            out.status.success(),
            "simulate failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 60));
        let cfg = DeepOdConfig {
            init: EmbeddingInit::Random,
            ds: 6,
            dt_dim: 6,
            d1m: 8,
            d2m: 6,
            d3m: 8,
            d4m: 6,
            d5m: 8,
            d6m: 6,
            d7m: 8,
            d9m: 8,
            dh: 8,
            dtraf: 4,
            ..DeepOdConfig::default()
        };
        let ctx = FeatureContext::build(&ds, cfg.slot_seconds).expect("valid slot size");
        let model_json = DeepOdModel::new(&cfg, &ds, &ctx)
            .expect("valid test config")
            .save_json()
            .expect("serializable model");
        let model = dir.join("model.json").display().to_string();
        std::fs::write(&model, model_json).expect("write model file");
        Setup {
            dir,
            data,
            model,
            ds,
        }
    })
}

fn request_line(s: &Setup, id: usize) -> String {
    let od = &s.ds.train[id % s.ds.train.len()].od;
    format!(
        "{{\"id\": {id}, \"from\": [{}, {}], \"to\": [{}, {}], \"depart\": {}}}",
        od.origin.x, od.origin.y, od.destination.x, od.destination.y, od.depart
    )
}

/// Runs `deepod serve` with extra flags and environment (failpoints,
/// metrics path), feeding `input` on stdin from a writer thread.
fn run_serve(extra_args: &[&str], env: &[(&str, &str)], input: String) -> Output {
    let s = setup();
    let mut child = Command::new(bin())
        .args(["serve", "--data", &s.data, "--model", &s.model])
        .args(extra_args)
        .env("DEEPOD_LOG", "off")
        .envs(env.iter().copied())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn deepod serve");
    let mut stdin = child.stdin.take().expect("piped stdin");
    let writer = std::thread::spawn(move || {
        let _ = stdin.write_all(input.as_bytes());
    });
    let out = child.wait_with_output().expect("serve terminates at EOF");
    writer.join().expect("writer thread");
    out
}

struct Reply {
    id: Option<u64>,
    eta_s: Option<f64>,
    error: Option<String>,
}

fn parse_reply(line: &str) -> Reply {
    let v = json::parse(line).unwrap_or_else(|e| panic!("bad response line {line:?}: {e}"));
    let num = |field: &str| match json::obj_field(&v, field) {
        Ok(Value::Num(raw)) => Some(raw.parse::<f64>().expect("numeric field")),
        _ => None,
    };
    Reply {
        id: num("id").map(|n| n as u64), // deepod-lint: allow(truncating-cast)
        eta_s: num("eta_s"),
        error: match json::obj_field(&v, "error") {
            Ok(Value::Str(s)) => Some(s.clone()),
            _ => None,
        },
    }
}

fn read_metrics(path: &str) -> MetricsSnapshot {
    let payload = deepod_core::io_guard::read_checksummed(std::path::Path::new(path))
        .expect("metrics artifact passes checksum verification");
    let text = String::from_utf8(payload).expect("metrics artifact is utf-8");
    MetricsSnapshot::from_json(&text).expect("metrics artifact parses")
}

fn counter(snap: &MetricsSnapshot, name: &str) -> u64 {
    *snap
        .counters
        .get(name)
        .unwrap_or_else(|| panic!("counter '{name}' missing: {:?}", snap.counters))
}

/// Every request id in 0..n appears on exactly one reply line.
fn assert_exactly_one_reply_each(replies: &[Reply], n: usize) {
    assert_eq!(replies.len(), n, "one reply line per request line");
    let mut seen = vec![0u32; n];
    for r in replies {
        let id = r.id.expect("every chaos request carries an id") as usize;
        assert!(id < n, "unknown reply id {id}");
        seen[id] += 1;
    }
    for (id, count) in seen.iter().enumerate() {
        assert_eq!(*count, 1, "request {id} got {count} replies");
    }
}

#[test]
fn worker_panic_is_supervised_and_every_request_still_gets_a_reply() {
    let s = setup();
    const N: usize = 48;
    let metrics = s.dir.join("panic_metrics.json").display().to_string();
    let input: String = (0..N).map(|i| request_line(s, i) + "\n").collect();
    let out = run_serve(
        &["--workers", "2", "--max-batch", "4"],
        &[
            ("DEEPOD_FAILPOINTS", "serve::worker_batch:3:panic"),
            ("DEEPOD_METRICS", metrics.as_str()),
        ],
        input,
    );
    assert!(
        out.status.success(),
        "a supervised worker panic must not kill the process: {:?}\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    let replies: Vec<Reply> = stdout.lines().map(parse_reply).collect();
    assert_exactly_one_reply_each(&replies, N);
    // With no retry budget the doomed batch fails with a typed error;
    // everything else is answered normally.
    let crashed = replies
        .iter()
        .filter(|r| {
            r.error
                .as_deref()
                .is_some_and(|e| e.contains("worker crashed"))
        })
        .count();
    let answered = replies.iter().filter(|r| r.eta_s.is_some()).count();
    assert!(crashed >= 1, "the in-flight batch surfaces typed errors");
    assert_eq!(answered + crashed, N, "no third reply kind under panic");
    let snap = read_metrics(&metrics);
    assert!(
        counter(&snap, "serve.worker_restarts") >= 1,
        "the supervisor counts the restart"
    );
}

#[test]
fn retry_budget_turns_a_worker_crash_into_answered_requests() {
    let s = setup();
    const N: usize = 48;
    let metrics = s.dir.join("retry_metrics.json").display().to_string();
    let input: String = (0..N).map(|i| request_line(s, i) + "\n").collect();
    let out = run_serve(
        &["--workers", "2", "--max-batch", "4", "--retry-budget", "2"],
        &[
            ("DEEPOD_FAILPOINTS", "serve::worker_batch:3:panic"),
            ("DEEPOD_METRICS", metrics.as_str()),
        ],
        input,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    let replies: Vec<Reply> = stdout.lines().map(parse_reply).collect();
    assert_exactly_one_reply_each(&replies, N);
    for r in &replies {
        assert!(
            r.eta_s.is_some(),
            "with retry budget the requeued batch succeeds on the fresh \
             replica; got error {:?} for id {:?}",
            r.error,
            r.id
        );
    }
    let snap = read_metrics(&metrics);
    assert!(counter(&snap, "serve.worker_restarts") >= 1);
    assert!(
        counter(&snap, "serve.retries") >= 1,
        "the doomed batch was requeued, not failed"
    );
}

#[test]
fn slow_batch_makes_queued_requests_miss_their_deadline() {
    let s = setup();
    const N: usize = 64;
    let metrics = s.dir.join("deadline_metrics.json").display().to_string();
    let input: String = (0..N).map(|i| request_line(s, i) + "\n").collect();
    let out = run_serve(
        &["--max-batch", "4", "--deadline-ms", "100"],
        &[
            ("DEEPOD_FAILPOINTS", "serve::slow_batch:1:sleep=300"),
            ("DEEPOD_METRICS", metrics.as_str()),
        ],
        input,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    let replies: Vec<Reply> = stdout.lines().map(parse_reply).collect();
    assert_exactly_one_reply_each(&replies, N);
    let expired = replies
        .iter()
        .filter(|r| {
            r.error
                .as_deref()
                .is_some_and(|e| e.contains("deadline exceeded"))
        })
        .count();
    let answered = replies.iter().filter(|r| r.eta_s.is_some()).count();
    assert!(
        expired >= 1,
        "requests stuck behind a 300ms batch must miss a 100ms deadline"
    );
    assert_eq!(answered + expired, N, "answered or swept, nothing else");
    let snap = read_metrics(&metrics);
    assert!(counter(&snap, "serve.deadline_expired") >= 1);
}

#[test]
fn a_dropped_reply_surfaces_as_a_typed_error_not_a_hang() {
    let s = setup();
    const N: usize = 16;
    let input: String = (0..N).map(|i| request_line(s, i) + "\n").collect();
    let out = run_serve(
        &["--max-batch", "1"],
        &[("DEEPOD_FAILPOINTS", "serve::drop_reply:5")],
        input,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    let replies: Vec<Reply> = stdout.lines().map(parse_reply).collect();
    assert_exactly_one_reply_each(&replies, N);
    let dropped = replies
        .iter()
        .filter(|r| {
            r.error
                .as_deref()
                .is_some_and(|e| e.contains("worker crashed"))
        })
        .count();
    assert_eq!(
        dropped, 1,
        "exactly the dropped reply becomes a typed error"
    );
    assert_eq!(
        replies.iter().filter(|r| r.eta_s.is_some()).count(),
        N - 1,
        "every other request is answered normally"
    );
}

#[test]
fn saturation_sheds_with_typed_errors_and_counts_them() {
    let s = setup();
    const N: usize = 1500;
    let metrics = s.dir.join("shed_metrics.json").display().to_string();
    let input: String = (0..N).map(|i| request_line(s, i) + "\n").collect();
    let out = run_serve(
        &["--reject-when-full", "--queue", "1", "--max-batch", "1"],
        &[("DEEPOD_METRICS", metrics.as_str())],
        input,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    let replies: Vec<Reply> = stdout.lines().map(parse_reply).collect();
    assert_exactly_one_reply_each(&replies, N);
    let answered = replies.iter().filter(|r| r.eta_s.is_some()).count();
    let shed = replies
        .iter()
        .filter(|r| {
            r.error
                .as_deref()
                .is_some_and(|e| e.contains("queue full") || e.contains("overloaded"))
        })
        .count();
    assert_eq!(answered + shed, N, "answers and typed rejections only");
    assert!(answered > 0 && shed > 0, "{answered} answered, {shed} shed");
    let snap = read_metrics(&metrics);
    assert!(
        counter(&snap, "serve.shed_reject") >= 1,
        "ladder rejections are counted"
    );
    // The ladder's low-priority counter is registered (visible at zero)
    // even though this workload is all normal-priority.
    counter(&snap, "serve.shed_low");
}

#[test]
fn single_worker_defaults_are_bit_identical_and_multi_worker_agrees() {
    let s = setup();
    const N: usize = 96;
    let input: String = (0..N).map(|i| request_line(s, i) + "\n").collect();
    let single = &[
        "--workers",
        "1",
        "--deadline-ms",
        "0",
        "--retry-budget",
        "0",
    ];
    let a = run_serve(single, &[], input.clone());
    let b = run_serve(single, &[], input.clone());
    assert!(a.status.success() && b.status.success());
    assert_eq!(
        a.stdout, b.stdout,
        "the single-worker configuration is deterministic"
    );
    let multi = run_serve(&["--workers", "4"], &[], input);
    assert!(multi.status.success());
    assert_eq!(
        String::from_utf8(multi.stdout).expect("utf8 stdout"),
        String::from_utf8(a.stdout).expect("utf8 stdout"),
        "four shards return the same answers in the same order"
    );
}

//! Serving integration suite: drives the real `deepod serve` subcommand
//! over its newline-delimited JSON stdin/stdout protocol and proves the
//! DESIGN.md §11 contract end to end:
//!
//! * one long-lived process answers ≥ 1000 requests, in input order, with
//!   one response line per request line and a clean exit 0 at EOF;
//! * malformed lines and unmatchable ODs get per-request error lines
//!   without disturbing their neighbors;
//! * `--reject-when-full` turns overload into explicit typed error lines
//!   (`queue full` / the degradation ladder's `overloaded`) instead of
//!   unbounded buffering;
//! * a corrupt model file degrades to route-tte fallback answers
//!   (`"degraded":true` on every reply, exit code 2), never a crash.

use deepod_core::{DeepOdConfig, DeepOdModel, EmbeddingInit, FeatureContext};
use deepod_roadnet::CityProfile;
use deepod_traj::{CityDataset, DatasetBuilder, DatasetConfig};
use serde::json::{self, Value};
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};
use std::sync::OnceLock;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_deepod")
}

struct Setup {
    data: String,
    model: String,
    ds: CityDataset,
}

/// Built once: a simulated city written through the CLI (so `--data`
/// exercises the real loader) and an untrained-but-valid model saved
/// through the real serializer. Serving correctness does not depend on
/// model quality, so skipping training keeps the suite fast.
fn setup() -> &'static Setup {
    static SETUP: OnceLock<Setup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let dir: PathBuf =
            std::env::temp_dir().join(format!("deepod_serve_suite_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("suite temp dir");
        let data = dir.join("city.json").display().to_string();
        let out = Command::new(bin())
            .args([
                "simulate",
                "--profile",
                "chengdu",
                "--orders",
                "60",
                "--out",
                &data,
            ])
            .output()
            .expect("spawn deepod binary");
        assert!(
            out.status.success(),
            "simulate failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        // The dataset builder is deterministic, so this in-process build
        // matches the file the CLI just wrote — its ODs are valid inputs.
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 60));
        let cfg = DeepOdConfig {
            init: EmbeddingInit::Random,
            ds: 6,
            dt_dim: 6,
            d1m: 8,
            d2m: 6,
            d3m: 8,
            d4m: 6,
            d5m: 8,
            d6m: 6,
            d7m: 8,
            d9m: 8,
            dh: 8,
            dtraf: 4,
            ..DeepOdConfig::default()
        };
        let ctx = FeatureContext::build(&ds, cfg.slot_seconds).expect("valid slot size");
        let model_json = DeepOdModel::new(&cfg, &ds, &ctx)
            .expect("valid test config")
            .save_json()
            .expect("serializable model");
        let model = dir.join("model.json").display().to_string();
        std::fs::write(&model, model_json).expect("write model file");
        Setup { data, model, ds }
    })
}

/// One request line for the i-th train order (ODs known to match the
/// road network).
fn request_line(s: &Setup, id: usize) -> String {
    let od = &s.ds.train[id % s.ds.train.len()].od;
    format!(
        "{{\"id\": {id}, \"from\": [{}, {}], \"to\": [{}, {}], \"depart\": {}}}",
        od.origin.x, od.origin.y, od.destination.x, od.destination.y, od.depart
    )
}

/// Runs `deepod serve` feeding `input` on stdin (from a writer thread, so
/// neither pipe can deadlock on a full buffer) and returns the full output.
fn run_serve(extra_args: &[&str], model: &str, input: String) -> Output {
    let s = setup();
    let mut child = Command::new(bin())
        .args(["serve", "--data", &s.data, "--model", model])
        .args(extra_args)
        .env("DEEPOD_LOG", "off")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn deepod serve");
    let mut stdin = child.stdin.take().expect("piped stdin");
    let writer = std::thread::spawn(move || {
        let _ = stdin.write_all(input.as_bytes());
        // Dropping stdin closes the pipe: the EOF that shuts serve down.
    });
    let out = child.wait_with_output().expect("serve terminates at EOF");
    writer.join().expect("writer thread");
    out
}

struct Reply {
    id: Option<u64>,
    eta_s: Option<f64>,
    degraded: Option<bool>,
    error: Option<String>,
}

fn parse_reply(line: &str) -> Reply {
    let v = json::parse(line).unwrap_or_else(|e| panic!("bad response line {line:?}: {e}"));
    let num = |field: &str| match json::obj_field(&v, field) {
        Ok(Value::Num(raw)) => Some(raw.parse::<f64>().expect("numeric field")),
        _ => None,
    };
    Reply {
        id: num("id").map(|n| n as u64), // deepod-lint: allow(truncating-cast)
        eta_s: num("eta_s"),
        degraded: match json::obj_field(&v, "degraded") {
            Ok(Value::Bool(b)) => Some(*b),
            _ => None,
        },
        error: match json::obj_field(&v, "error") {
            Ok(Value::Str(s)) => Some(s.clone()),
            _ => None,
        },
    }
}

#[test]
fn one_process_answers_a_thousand_requests_in_order() {
    let s = setup();
    const N: usize = 1000;
    let input: String = (0..N).map(|i| request_line(s, i) + "\n").collect();
    let out = run_serve(&[], &s.model, input);
    assert!(
        out.status.success(),
        "serve exited {:?}: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), N, "one response line per request line");
    for (i, line) in lines.iter().enumerate() {
        let r = parse_reply(line);
        assert_eq!(r.id, Some(i as u64), "responses arrive in input order");
        assert_eq!(r.degraded, Some(false), "real model is not degraded");
        let eta = r.eta_s.expect("answered request carries eta_s");
        assert!(eta.is_finite() && eta >= 0.0, "sane ETA, got {eta}");
    }
}

#[test]
fn bad_lines_get_error_replies_without_killing_the_stream() {
    let s = setup();
    let input = format!(
        "{}\nthis is not json\n{}\n\n{}\n",
        request_line(s, 0),
        // Unmatchable OD: kilometers outside any road segment.
        "{\"id\": 77, \"from\": [-9e9, -9e9], \"to\": [9e9, 9e9], \"depart\": 0}",
        request_line(s, 1),
    );
    let out = run_serve(&[], &s.model, input);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    let replies: Vec<Reply> = stdout.lines().map(parse_reply).collect();
    assert_eq!(
        replies.len(),
        4,
        "blank lines are skipped, bad lines are not"
    );
    assert!(replies[0].eta_s.is_some());
    assert_eq!(replies[1].id, None, "unparseable line has no id to echo");
    assert!(replies[1]
        .error
        .as_deref()
        .is_some_and(|e| e.contains("JSON")));
    assert_eq!(
        replies[2].id,
        Some(77),
        "id echoed even for failed requests"
    );
    assert!(
        replies[2].error.is_some(),
        "unmatchable od fails per-request"
    );
    assert!(replies[3].eta_s.is_some(), "stream continues after errors");
}

#[test]
fn reject_when_full_sheds_load_with_queue_full_errors() {
    let s = setup();
    const N: usize = 2000;
    let input: String = (0..N).map(|i| request_line(s, i) + "\n").collect();
    let out = run_serve(
        &["--reject-when-full", "--queue", "1", "--max-batch", "1"],
        &s.model,
        input,
    );
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    let replies: Vec<Reply> = stdout.lines().map(parse_reply).collect();
    assert_eq!(replies.len(), N, "every request gets a verdict line");
    let answered = replies.iter().filter(|r| r.eta_s.is_some()).count();
    // A saturated capacity-1 queue sheds either as a raw `queue full` or,
    // once the degradation ladder trips, as `overloaded` — both are
    // explicit typed backpressure.
    let shed = replies
        .iter()
        .filter(|r| {
            r.error
                .as_deref()
                .is_some_and(|e| e.contains("queue full") || e.contains("overloaded"))
        })
        .count();
    assert_eq!(answered + shed, N, "only answers and typed shed rejections");
    assert!(answered > 0, "a capacity-1 queue still makes progress");
    assert!(
        shed > 0,
        "piping {N} requests at a capacity-1 queue must shed load"
    );
}

#[test]
fn corrupt_model_serves_degraded_fallback_answers_and_exits_2() {
    let s = setup();
    let dir = std::env::temp_dir().join(format!("deepod_serve_suite_{}", std::process::id()));
    let corrupt = dir.join("corrupt.json").display().to_string();
    std::fs::write(&corrupt, "{ this is not a model").expect("write corrupt file");
    let input: String = (0..8).map(|i| request_line(s, i) + "\n").collect();
    let out = run_serve(&[], &corrupt, input);
    assert_eq!(
        out.status.code(),
        Some(2),
        "degraded serving uses the dedicated exit code: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    let replies: Vec<Reply> = stdout.lines().map(parse_reply).collect();
    assert_eq!(replies.len(), 8, "fallback still answers every request");
    for r in &replies {
        assert_eq!(r.degraded, Some(true), "fallback replies are flagged");
        assert!(r.eta_s.is_some(), "train ods resolve on the baseline");
    }
}

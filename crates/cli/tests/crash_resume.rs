//! Crash-safety integration suite: drives the real `deepod` binary with
//! `DEEPOD_FAILPOINTS` schedules, kills it mid-training, and proves the
//! crash-safe training contract end to end:
//!
//! * a run killed at an epoch boundary, mid-epoch step, or by an injected
//!   worker-thread panic resumes to a **bit-identical** training report
//!   (validation-curve `f32` bits, final train loss, step counts);
//! * truncated or bit-flipped checkpoints are rejected with a typed
//!   checksum error and exit code 1 — never a panic, never a silently
//!   wrong model;
//! * `predict` degrades to the route-tte baseline with exit code 2 when
//!   the model file is missing or corrupt;
//! * atomic writes never tear the destination file, even when the process
//!   dies between writing the temp file and renaming it.
//!
//! Exit-code taxonomy under test: 0 ok, 1 error, 2 degraded fallback,
//! 70 failpoint kill (simulated crash), 101 Rust panic.

use deepod_core::TrainReport;
use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::OnceLock;

const KILL: i32 = 70;
const PANIC: i32 = 101;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_deepod")
}

fn run(args: &[&str], failpoints: Option<&str>) -> Output {
    let mut cmd = Command::new(bin());
    cmd.args(args);
    // Isolate every subprocess from the test environment; thread counts
    // are always passed explicitly for determinism, and observability is
    // left at its defaults (the fallback warning asserted below rides on
    // the default `warn` level).
    for var in [
        "DEEPOD_FAILPOINTS",
        "DEEPOD_THREADS",
        "DEEPOD_LOG",
        "DEEPOD_LOG_FORMAT",
        "DEEPOD_METRICS",
    ] {
        cmd.env_remove(var);
    }
    if let Some(fp) = failpoints {
        cmd.env("DEEPOD_FAILPOINTS", fp);
    }
    cmd.output().expect("spawn deepod binary")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn read_report(path: &std::path::Path) -> TrainReport {
    let json = std::fs::read_to_string(path).expect("report file");
    serde_json::from_str(&json).expect("report parses")
}

/// The deterministic parts of two reports must match to the bit; wall
/// clocks (`elapsed_s`, `*_time_s`) are excluded by design.
fn assert_reports_bit_identical(label: &str, a: &TrainReport, b: &TrainReport) {
    assert_eq!(a.curve.len(), b.curve.len(), "{label}: curve length");
    for (pa, pb) in a.curve.iter().zip(&b.curve) {
        assert_eq!(pa.step, pb.step, "{label}: curve step");
        assert_eq!(
            pa.val_mae.to_bits(),
            pb.val_mae.to_bits(),
            "{label}: val_mae at step {} ({} vs {})",
            pa.step,
            pa.val_mae,
            pb.val_mae
        );
    }
    assert_eq!(
        a.best_val_mae.to_bits(),
        b.best_val_mae.to_bits(),
        "{label}: best_val_mae"
    );
    assert_eq!(
        a.final_train_loss.to_bits(),
        b.final_train_loss.to_bits(),
        "{label}: final_train_loss"
    );
    assert_eq!(a.total_steps, b.total_steps, "{label}: total_steps");
    assert_eq!(
        a.convergence_step, b.convergence_step,
        "{label}: convergence_step"
    );
}

struct Setup {
    dir: PathBuf,
    data: String,
    /// Report of an uninterrupted single-threaded run with checkpointing.
    baseline_t1: TrainReport,
}

impl Setup {
    fn path(&self, name: &str) -> String {
        self.dir.join(name).display().to_string()
    }

    /// `deepod train` argv shared by all runs of this suite (2 epochs,
    /// fixed seed, per-step checkpoints).
    fn train_args<'a>(
        &'a self,
        threads: &'a str,
        ckpt: &'a str,
        report: &'a str,
        model: &'a str,
    ) -> Vec<&'a str> {
        vec![
            "train",
            "--data",
            &self.data,
            "--epochs",
            "2",
            "--seed",
            "7",
            "--threads",
            threads,
            "--checkpoint-every",
            "1",
            "--checkpoint",
            ckpt,
            "--report",
            report,
            "--out",
            model,
        ]
    }
}

fn setup() -> &'static Setup {
    static SETUP: OnceLock<Setup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("deepod_crash_suite_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("suite temp dir");
        let data = dir.join("city.json").display().to_string();
        let out = run(
            &[
                "simulate",
                "--profile",
                "chengdu",
                "--orders",
                "60",
                "--out",
                &data,
            ],
            None,
        );
        assert!(out.status.success(), "simulate failed: {}", stderr_of(&out));

        let path = |name: &str| dir.join(name).display().to_string();
        let (ckpt, report, model) = (
            path("baseline.ckpt"),
            path("baseline_report.json"),
            path("baseline_model.json"),
        );
        let out = run(
            &[
                "train",
                "--data",
                &data,
                "--epochs",
                "2",
                "--seed",
                "7",
                "--threads",
                "1",
                "--checkpoint-every",
                "1",
                "--checkpoint",
                &ckpt,
                "--report",
                &report,
                "--out",
                &model,
            ],
            None,
        );
        assert!(
            out.status.success(),
            "baseline train failed: {}",
            stderr_of(&out)
        );
        let baseline_t1 = read_report(report.as_ref());
        Setup {
            dir,
            data,
            baseline_t1,
        }
    })
}

/// Kills training at a failpoint, resumes from the checkpoint it left
/// behind, and returns the resumed run's report.
fn kill_and_resume(
    s: &Setup,
    tag: &str,
    threads: &str,
    schedule: &str,
    want_exit: i32,
) -> TrainReport {
    let ckpt = s.path(&format!("{tag}.ckpt"));
    let report = s.path(&format!("{tag}_report.json"));
    let model = s.path(&format!("{tag}_model.json"));

    let killed = run(
        &s.train_args(threads, &ckpt, &report, &model),
        Some(schedule),
    );
    assert_eq!(
        killed.status.code(),
        Some(want_exit),
        "{tag}: schedule {schedule} should exit {want_exit}; stderr: {}",
        stderr_of(&killed)
    );
    assert!(
        std::path::Path::new(&ckpt).exists(),
        "{tag}: a checkpoint must survive the crash"
    );
    assert!(
        !std::path::Path::new(&model).exists(),
        "{tag}: the killed run must not have published a model"
    );

    let resumed = run(
        &[
            "train",
            "--data",
            &s.data,
            "--threads",
            threads,
            "--resume",
            &ckpt,
            "--report",
            &report,
            "--out",
            &model,
        ],
        None,
    );
    assert!(
        resumed.status.success(),
        "{tag}: resume failed: {}",
        stderr_of(&resumed)
    );
    assert!(
        std::path::Path::new(&model).exists(),
        "{tag}: resumed run must publish the model"
    );
    read_report(report.as_ref())
}

#[test]
fn kill_at_epoch_boundary_resumes_bit_identical() {
    let s = setup();
    // Second visit to the epoch hook = start of epoch 1: one full epoch
    // trained, then a hard crash.
    let report = kill_and_resume(s, "epoch_kill", "1", "train::epoch:2", KILL);
    assert_reports_bit_identical("epoch kill", &s.baseline_t1, &report);
}

#[test]
fn kill_mid_epoch_resumes_bit_identical() {
    let s = setup();
    // Third optimizer step: dies inside an epoch, so resume must carry
    // the partial epoch-loss accumulators and the reshuffled order.
    let report = kill_and_resume(s, "step_kill", "1", "train::step:3", KILL);
    assert_reports_bit_identical("step kill", &s.baseline_t1, &report);
}

#[test]
fn worker_panic_then_resume_recovers() {
    let s = setup();
    // A two-thread baseline for comparison (thread count changes the
    // gradient merge shape, so it gets its own reference run).
    let (ckpt, report, model) = (
        s.path("t2_baseline.ckpt"),
        s.path("t2_baseline_report.json"),
        s.path("t2_baseline_model.json"),
    );
    let out = run(&s.train_args("2", &ckpt, &report, &model), None);
    assert!(out.status.success(), "t2 baseline: {}", stderr_of(&out));
    let baseline_t2 = read_report(report.as_ref());

    // Kill a fan-out via an injected worker panic (exit 101, not the kill
    // code). Graph-embedding pretraining issues a build-dependent number
    // of fan-outs before the first optimizer step, so probe increasing
    // hit counts until the crash lands after a checkpoint was written.
    let ckpt = s.path("worker_panic.ckpt");
    let report_path = s.path("worker_panic_report.json");
    let model_path = s.path("worker_panic_model.json");
    let mut crashed = false;
    for nth in 3..64 {
        let _ = std::fs::remove_file(&ckpt);
        let schedule = format!("parallel::worker:{nth}:panic");
        let out = run(
            &s.train_args("2", &ckpt, &report_path, &model_path),
            Some(&schedule),
        );
        match out.status.code() {
            Some(0) => break, // ran to completion: no later fan-out exists
            Some(code) => {
                assert_eq!(code, PANIC, "schedule {schedule}: {}", stderr_of(&out));
                assert!(
                    stderr_of(&out).contains("injected panic"),
                    "{}",
                    stderr_of(&out)
                );
                if std::path::Path::new(&ckpt).exists() {
                    crashed = true;
                    break;
                }
            }
            None => panic!("killed by signal under schedule {schedule}"),
        }
    }
    assert!(
        crashed,
        "no worker-panic schedule crashed training after a checkpoint existed"
    );

    // The checkpoint written before the panic resumes to the exact
    // two-thread run.
    let resumed = run(
        &[
            "train",
            "--data",
            &s.data,
            "--resume",
            &ckpt,
            "--report",
            &report_path,
            "--out",
            &model_path,
        ],
        None,
    );
    assert!(
        resumed.status.success(),
        "worker panic resume failed: {}",
        stderr_of(&resumed)
    );
    let resumed_report = read_report(report_path.as_ref());
    assert_reports_bit_identical("worker panic", &baseline_t2, &resumed_report);
}

#[test]
fn corrupt_checkpoints_are_rejected_with_typed_errors() {
    let s = setup();
    let good = s.path("baseline.ckpt");
    let bytes = std::fs::read(&good).expect("baseline checkpoint bytes");

    // Bit flip in the payload → checksum mismatch, exit 1.
    let flipped = s.path("flipped.ckpt");
    let mut bad = bytes.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x01;
    std::fs::write(&flipped, &bad).expect("write corrupt checkpoint");
    let out = run(
        &[
            "train",
            "--data",
            &s.data,
            "--resume",
            &flipped,
            "--out",
            &s.path("never.json"),
        ],
        None,
    );
    assert_eq!(out.status.code(), Some(1), "bit flip must be a clean error");
    assert!(
        stderr_of(&out).contains("checksum mismatch"),
        "stderr: {}",
        stderr_of(&out)
    );

    // Truncation → typed truncation error, exit 1.
    let truncated = s.path("truncated.ckpt");
    std::fs::write(&truncated, &bytes[..bytes.len() / 3]).expect("write truncated checkpoint");
    let out = run(
        &[
            "train",
            "--data",
            &s.data,
            "--resume",
            &truncated,
            "--out",
            &s.path("never.json"),
        ],
        None,
    );
    assert_eq!(
        out.status.code(),
        Some(1),
        "truncation must be a clean error"
    );
    let err = stderr_of(&out);
    assert!(
        err.contains("truncated") || err.contains("checksum") || err.contains("footer"),
        "stderr: {err}"
    );
    assert!(
        !std::path::Path::new(&s.path("never.json")).exists(),
        "no model may be produced from a corrupt checkpoint"
    );
}

#[test]
fn predict_falls_back_to_route_tte_on_bad_model() {
    let s = setup();
    // Pull a real test-order OD so the fallback predictor can map-match
    // it; `simulate` is deterministic, so rebuilding the same profile and
    // order count in-process reproduces the dataset the CLI wrote.
    let ds = deepod_traj::DatasetBuilder::build(&deepod_traj::DatasetConfig::for_profile(
        deepod_roadnet::CityProfile::SynthChengdu,
        60,
    ));
    let od = &ds.test[0].od;
    let from = format!("{},{}", od.origin.x, od.origin.y);
    let to = format!("{},{}", od.destination.x, od.destination.y);
    let depart = od.depart.to_string();

    // Missing model file → warning + fallback ETA + exit 2.
    let out = run(
        &[
            "predict",
            "--data",
            &s.data,
            "--model",
            &s.path("no_such_model.json"),
            "--from",
            &from,
            "--to",
            &to,
            "--depart",
            &depart,
        ],
        None,
    );
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("falling back"),
        "{}",
        stderr_of(&out)
    );
    assert!(
        stdout_of(&out).contains("route-tte fallback"),
        "{}",
        stdout_of(&out)
    );

    // Corrupt model file → same degraded path.
    let corrupt = s.path("corrupt_model.json");
    std::fs::write(&corrupt, "{definitely not a model").expect("write corrupt model");
    let out = run(
        &[
            "predict", "--data", &s.data, "--model", &corrupt, "--from", &from, "--to", &to,
            "--depart", &depart,
        ],
        None,
    );
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr_of(&out));
    assert!(
        stdout_of(&out).contains("route-tte fallback"),
        "{}",
        stdout_of(&out)
    );
}

#[test]
fn atomic_write_never_tears_the_destination() {
    let s = setup();
    let target = s.path("atomic_city.json");
    let out = run(
        &[
            "simulate",
            "--profile",
            "chengdu",
            "--orders",
            "40",
            "--out",
            &target,
        ],
        None,
    );
    assert!(out.status.success(), "{}", stderr_of(&out));
    let original = std::fs::read(&target).expect("first dataset");

    // Crash after the temp file is written but before the rename: the
    // published file must be byte-identical to the previous version.
    let out = run(
        &[
            "simulate",
            "--profile",
            "chengdu",
            "--orders",
            "45",
            "--out",
            &target,
        ],
        Some("io_guard::pre_rename:1"),
    );
    assert_eq!(out.status.code(), Some(KILL), "{}", stderr_of(&out));
    let after = std::fs::read(&target).expect("dataset still present");
    assert_eq!(original, after, "destination must never be torn");
}

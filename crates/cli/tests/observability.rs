//! Observability integration suite: drives the real `deepod` binary and
//! proves the `deepod_core::obs` contract end to end:
//!
//! * `--log-format json` produces stderr where **every** line parses as a
//!   JSON object carrying `level` / `target` / `msg` keys (golden-format
//!   test for log shippers);
//! * `--metrics FILE` writes a checksummed artifact that round-trips
//!   through `io_guard` verification and contains the per-epoch loss
//!   series, validation-MAE series, checkpoint save latency, and the
//!   `io_guard.retries` counter from a real `train` run;
//! * observability is free of heisenbugs: training curves are
//!   bit-identical with `DEEPOD_LOG=trace` vs `DEEPOD_LOG=off`;
//! * counters are thread-invariant: `threads=1` and `threads=2` runs
//!   produce identical counter maps (wall-clock lives only in gauges and
//!   histograms);
//! * a malformed `DEEPOD_FAILPOINTS` spec is a hard configuration error
//!   (exit 78), never a silently dropped failpoint.

use deepod_core::obs::registry::MetricsSnapshot;
use deepod_core::TrainReport;
use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::OnceLock;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_deepod")
}

/// Runs the binary with a fully isolated observability environment; the
/// extra `env` pairs configure each run explicitly.
fn run(args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(bin());
    cmd.args(args);
    for var in [
        "DEEPOD_FAILPOINTS",
        "DEEPOD_THREADS",
        "DEEPOD_LOG",
        "DEEPOD_LOG_FORMAT",
        "DEEPOD_METRICS",
    ] {
        cmd.env_remove(var);
    }
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn deepod binary")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

struct Setup {
    dir: PathBuf,
    data: String,
}

impl Setup {
    fn path(&self, name: &str) -> String {
        self.dir.join(name).display().to_string()
    }

    /// `deepod train` argv shared by this suite: 2 epochs, fixed seed,
    /// epoch-boundary checkpoints (so checkpoint metrics exist).
    fn train_args<'a>(
        &'a self,
        threads: &'a str,
        ckpt: &'a str,
        report: &'a str,
        model: &'a str,
    ) -> Vec<&'a str> {
        vec![
            "train",
            "--data",
            &self.data,
            "--epochs",
            "2",
            "--seed",
            "7",
            "--threads",
            threads,
            "--checkpoint",
            ckpt,
            "--report",
            report,
            "--out",
            model,
        ]
    }
}

fn setup() -> &'static Setup {
    static SETUP: OnceLock<Setup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("deepod_obs_suite_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("suite temp dir");
        let data = dir.join("city.json").display().to_string();
        let out = run(
            &[
                "simulate",
                "--profile",
                "chengdu",
                "--orders",
                "60",
                "--out",
                &data,
            ],
            &[],
        );
        assert!(out.status.success(), "simulate failed: {}", stderr_of(&out));
        Setup { dir, data }
    })
}

fn read_report(path: &str) -> TrainReport {
    let json = std::fs::read_to_string(path).expect("report file");
    serde_json::from_str(&json).expect("report parses")
}

fn read_metrics(path: &str) -> MetricsSnapshot {
    let payload = deepod_core::io_guard::read_checksummed(std::path::Path::new(path))
        .expect("metrics artifact passes checksum verification");
    let text = String::from_utf8(payload).expect("metrics artifact is utf-8");
    MetricsSnapshot::from_json(&text).expect("metrics artifact parses")
}

#[test]
fn json_log_lines_parse_and_metrics_artifact_is_complete() {
    let s = setup();
    let (ckpt, report, model, metrics) = (
        s.path("json.ckpt"),
        s.path("json_report.json"),
        s.path("json_model.json"),
        s.path("json_metrics.json"),
    );
    let mut args = s.train_args("1", &ckpt, &report, &model);
    args.extend(["--log-format", "json", "--metrics", &metrics]);
    let out = run(&args, &[("DEEPOD_LOG", "debug")]);
    assert!(out.status.success(), "train failed: {}", stderr_of(&out));

    // Golden format: every stderr line is a JSON object with the event
    // schema keys. A single stray bare print breaks log shippers.
    let stderr = stderr_of(&out);
    let lines: Vec<&str> = stderr.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(
        !lines.is_empty(),
        "debug level must produce events; stderr empty"
    );
    for line in &lines {
        let v = serde::json::parse(line)
            .unwrap_or_else(|e| panic!("stderr line is not JSON ({e}): {line}"));
        for key in ["level", "target", "msg", "t_ms"] {
            assert!(
                serde::json::obj_field(&v, key).is_ok(),
                "event missing '{key}': {line}"
            );
        }
    }

    // The artifact round-trips through io_guard checksum verification and
    // carries the acceptance-criteria contents from a real train run.
    let snap = read_metrics(&metrics);
    let c = |name: &str| -> u64 {
        *snap
            .counters
            .get(name)
            .unwrap_or_else(|| panic!("counter '{name}' missing: {:?}", snap.counters))
    };
    assert!(c("train.steps") > 0, "per-step counter");
    assert_eq!(c("train.epochs"), 2, "one increment per epoch");
    assert!(c("checkpoint.saves") > 0, "epoch-boundary checkpoints");
    assert!(c("io_guard.writes") > 0, "model/report/checkpoint writes");
    assert_eq!(
        c("io_guard.retries"),
        0,
        "retry counter must exist even when no write was retried"
    );

    let save_ms = snap
        .histograms
        .get("checkpoint.save_ms")
        .expect("checkpoint save latency histogram");
    assert_eq!(save_ms.count, c("checkpoint.saves"), "one sample per save");
    assert!(save_ms.sum >= 0.0);
    assert!(
        snap.histograms.contains_key("io_guard.fsync_ms"),
        "fsync timing span"
    );

    let epoch_loss = snap
        .series
        .get("train.epoch_loss")
        .expect("per-epoch loss series");
    assert_eq!(epoch_loss.len(), 2, "one point per epoch");
    assert!(
        epoch_loss.iter().all(|p| p.value.is_finite()),
        "losses are finite: {epoch_loss:?}"
    );
    let val_mae = snap
        .series
        .get("train.val_mae")
        .expect("validation MAE series");
    assert!(!val_mae.is_empty());
    assert!(
        snap.gauges.contains_key("train.best_val_mae"),
        "best-MAE gauge"
    );
}

#[test]
fn training_is_bit_identical_with_observability_on_vs_off() {
    let s = setup();
    let run_with_log = |tag: &str, log: &str| -> TrainReport {
        let (ckpt, report, model) = (
            s.path(&format!("{tag}.ckpt")),
            s.path(&format!("{tag}_report.json")),
            s.path(&format!("{tag}_model.json")),
        );
        let mut args = s.train_args("1", &ckpt, &report, &model);
        args.extend(["--log-format", "text"]);
        let out = run(&args, &[("DEEPOD_LOG", log)]);
        assert!(out.status.success(), "{tag}: {}", stderr_of(&out));
        if log == "off" {
            assert!(
                stderr_of(&out).is_empty(),
                "DEEPOD_LOG=off must silence stderr: {}",
                stderr_of(&out)
            );
        }
        read_report(&report)
    };
    let loud = run_with_log("trace_run", "trace");
    let quiet = run_with_log("off_run", "off");

    assert_eq!(loud.curve.len(), quiet.curve.len(), "curve length");
    for (a, b) in loud.curve.iter().zip(&quiet.curve) {
        assert_eq!(a.step, b.step);
        assert_eq!(
            a.val_mae.to_bits(),
            b.val_mae.to_bits(),
            "val_mae at step {} ({} vs {})",
            a.step,
            a.val_mae,
            b.val_mae
        );
    }
    assert_eq!(loud.best_val_mae.to_bits(), quiet.best_val_mae.to_bits());
    assert_eq!(
        loud.final_train_loss.to_bits(),
        quiet.final_train_loss.to_bits()
    );
    assert_eq!(loud.total_steps, quiet.total_steps);
}

#[test]
fn counters_are_identical_across_thread_counts() {
    let s = setup();
    let counters_with_threads = |tag: &str, threads: &str| {
        let (ckpt, report, model, metrics) = (
            s.path(&format!("{tag}.ckpt")),
            s.path(&format!("{tag}_report.json")),
            s.path(&format!("{tag}_model.json")),
            s.path(&format!("{tag}_metrics.json")),
        );
        let mut args = s.train_args(threads, &ckpt, &report, &model);
        args.extend(["--metrics", &metrics]);
        let out = run(&args, &[]);
        assert!(out.status.success(), "{tag}: {}", stderr_of(&out));
        read_metrics(&metrics).counters
    };
    let t1 = counters_with_threads("counters_t1", "1");
    let t2 = counters_with_threads("counters_t2", "2");
    assert_eq!(
        t1, t2,
        "counters must be a pure function of the work done, not the thread count"
    );
    assert!(t1.contains_key("train.steps"), "{t1:?}");
}

#[test]
fn malformed_failpoint_spec_is_a_hard_config_error() {
    let s = setup();
    for (spec, why) in [
        ("garbage", "no colon at all"),
        ("train::step:zzz:kill", "hit count is not a number"),
        ("train::step:1:explode", "unknown action"),
    ] {
        let out = run(&["info", "--data", &s.data], &[("DEEPOD_FAILPOINTS", spec)]);
        assert_eq!(
            out.status.code(),
            Some(deepod_tensor::failpoint::CONFIG_EXIT_CODE),
            "spec '{spec}' ({why}) must exit {}: stderr {}",
            deepod_tensor::failpoint::CONFIG_EXIT_CODE,
            stderr_of(&out)
        );
        assert!(
            stderr_of(&out).contains("malformed DEEPOD_FAILPOINTS"),
            "stderr: {}",
            stderr_of(&out)
        );
    }

    // A well-formed spec naming a site that never fires stays harmless.
    let out = run(
        &["info", "--data", &s.data],
        &[("DEEPOD_FAILPOINTS", "no::such_site:1")],
    );
    assert!(out.status.success(), "{}", stderr_of(&out));
}

//! `deepod` — the command-line interface to the DeepOD stack.
//!
//! Subcommands:
//!
//! * `simulate` — generate a synthetic city dataset and write it as JSON.
//! * `train`    — train a DeepOD model on a dataset file, save the model.
//! * `predict`  — load a model + dataset and answer one OD query.
//! * `eval`     — load a model + dataset and report test MAE/MAPE/MARE.
//! * `info`     — print summary statistics of a dataset or model file.
//!
//! Global observability flags (stripped before subcommand dispatch):
//!
//! * `--log-format {text,json}` — structured-event format on stderr
//!   (also `DEEPOD_LOG_FORMAT`); verbosity comes from `DEEPOD_LOG`
//!   (`off|error|warn|info|debug|trace`, default `warn`).
//! * `--metrics FILE` — flush the process-wide metrics registry to FILE
//!   as checksummed JSON at exit (also `DEEPOD_METRICS`).
//!
//! Example round trip:
//!
//! ```text
//! deepod simulate --profile chengdu --orders 1500 --out city.json
//! deepod train    --data city.json --epochs 8 --out model.json
//! deepod eval     --data city.json --model model.json
//! deepod predict  --data city.json --model model.json \
//!                 --from 1200,3400 --to 4100,800 --depart 1468800
//! ```

mod args;
mod commands;
mod dataset_io;

use std::process::ExitCode;

/// Exit code for commands that succeeded through a degraded path (e.g.
/// the route-tte prediction fallback): distinct from both success (0) and
/// error (1) so callers can react without parsing output. The
/// fault-injection kill action uses its own code
/// ([`deepod_tensor::failpoint::KILL_EXIT_CODE`] = 70); a malformed
/// `DEEPOD_FAILPOINTS` spec exits with
/// [`deepod_tensor::failpoint::CONFIG_EXIT_CODE`] = 78.
const EXIT_DEGRADED: u8 = 2;

/// Removes `--flag value` from `argv` and returns the value, if present.
fn extract_value(argv: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = argv.iter().position(|a| a == flag)?;
    if i + 1 < argv.len() {
        let v = argv.remove(i + 1);
        argv.remove(i);
        Some(v)
    } else {
        None
    }
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();

    // Runtime configuration is process-global, so its flags are global
    // too: strip them here before the subcommand parsers see the argument
    // list, then resolve flags > environment > defaults in one place.
    let log_format = match extract_value(&mut argv, "--log-format") {
        Some(raw) => match deepod_core::obs::LogFormat::parse(&raw) {
            Some(f) => Some(f),
            None => {
                eprintln!("error: --log-format expects 'text' or 'json', got '{raw}'");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let overrides = deepod_core::RuntimeOverrides {
        log_format,
        metrics_path: extract_value(&mut argv, "--metrics"),
    };
    let runtime = deepod_core::RuntimeConfig::resolve(overrides, |key| std::env::var(key).ok());
    if let Err(e) = runtime.apply() {
        // A malformed DEEPOD_FAILPOINTS spec must abort (exit 78) even for
        // commands that never visit a failpoint site: fault injection that
        // silently fails to arm makes crash tests pass vacuously.
        eprintln!("fatal: {e}");
        return ExitCode::from(
            u8::try_from(deepod_tensor::failpoint::CONFIG_EXIT_CODE).unwrap_or(1),
        );
    }

    let outcome = commands::dispatch(&argv);

    // Flush metrics even when the command failed: the artifact is most
    // useful exactly when something went wrong.
    if let Some(path) = runtime.metrics_path {
        if let Err(e) = deepod_core::obs::registry::flush_to_path(std::path::Path::new(&path)) {
            eprintln!("error: writing metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    match outcome {
        Ok(commands::Outcome::Ok) => ExitCode::SUCCESS,
        Ok(commands::Outcome::Degraded) => ExitCode::from(EXIT_DEGRADED),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}

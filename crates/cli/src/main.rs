//! `deepod` — the command-line interface to the DeepOD stack.
//!
//! Subcommands:
//!
//! * `simulate` — generate a synthetic city dataset and write it as JSON.
//! * `train`    — train a DeepOD model on a dataset file, save the model.
//! * `predict`  — load a model + dataset and answer one OD query.
//! * `eval`     — load a model + dataset and report test MAE/MAPE/MARE.
//! * `info`     — print summary statistics of a dataset or model file.
//!
//! Example round trip:
//!
//! ```text
//! deepod simulate --profile chengdu --orders 1500 --out city.json
//! deepod train    --data city.json --epochs 8 --out model.json
//! deepod eval     --data city.json --model model.json
//! deepod predict  --data city.json --model model.json \
//!                 --from 1200,3400 --to 4100,800 --depart 1468800
//! ```

mod args;
mod commands;
mod dataset_io;

use std::process::ExitCode;

/// Exit code for commands that succeeded through a degraded path (e.g.
/// the route-tte prediction fallback): distinct from both success (0) and
/// error (1) so callers can react without parsing output. The
/// fault-injection kill action uses its own code
/// ([`deepod_tensor::failpoint::KILL_EXIT_CODE`] = 70).
const EXIT_DEGRADED: u8 = 2;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(commands::Outcome::Ok) => ExitCode::SUCCESS,
        Ok(commands::Outcome::Degraded) => ExitCode::from(EXIT_DEGRADED),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}

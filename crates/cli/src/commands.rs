//! Subcommand implementations.

use crate::args::Args;
use crate::dataset_io::{load_dataset, save_dataset};
use deepod_baselines::{RouteTtePredictor, TtePredictor};
use deepod_core::{
    io_guard, CheckpointPolicy, DeepOdConfig, DeepOdModel, FeatureContext, PredictRequest,
    TrainOptions, Trainer, TrainingCheckpoint,
};
use deepod_roadnet::{CityProfile, Point};
use deepod_traj::{DatasetBuilder, DatasetConfig, OdInput};
use std::path::Path;

/// Usage text printed on errors and by `deepod help`.
pub const USAGE: &str = "\
deepod — OD travel time estimation (DeepOD, SIGMOD 2020 reproduction)

USAGE:
  deepod simulate --profile <chengdu|xian|beijing> [--orders N] --out FILE
  deepod train    --data FILE [--epochs N] [--loss-weight W] [--seed S]
                  [--threads T] [--checkpoint-every N] [--checkpoint FILE]
                  [--resume FILE] [--report FILE] --out FILE
  deepod predict  --data FILE --model FILE --from X,Y --to X,Y --depart T
  deepod eval     --data FILE --model FILE [--precision <f32|int8>]
                  [--int8-mape-bound PP] [--oracle FILE]
  deepod precompute --data FILE --model FILE --out FILE [--cells K]
                  [--slots N] [--cell-meters M] [--threads T]
  deepod serve    --data FILE --model FILE [--max-batch N] [--max-wait-ms MS]
                  [--queue N] [--threads T] [--workers N] [--deadline-ms MS]
                  [--retry-budget N] [--reject-when-full]
                  [--precision <f32|int8>] [--int8-mape-bound PP]
                  [--oracle FILE] [--cache-capacity N] [--cache-ttl-s S]
                  [--listen ADDR] [--max-conns N] [--max-in-flight N]
                  [--max-frame-bytes N]
  deepod bench-serve --data FILE --model FILE [--out FILE] [--smoke]
  deepod info     --data FILE
  deepod help

serve reads newline-delimited JSON requests on stdin —
  {\"v\": 1, \"id\": 1, \"from\": [X, Y], \"to\": [X, Y], \"depart\": T}
— coalesces them into micro-batches (up to --max-batch requests or
--max-wait-ms of waiting), and answers in input order on stdout:
  {\"id\":1,\"eta_s\":412.5,\"degraded\":false}
The \"v\" protocol-version field is optional (absent means v1); frames
declaring any other version get a typed structured reject
{\"id\":null,\"error\":{\"kind\":\"unsupported_version\",\"msg\":...}}.

With --listen ADDR the same protocol is served over TCP instead (the
first stdout line reports the bound address; the process serves until
stdin closes). Each connection gets its own reader/writer pair and
per-client admission control: --max-in-flight caps one connection's
unanswered requests (typed in_flight_limit rejects beyond it, so a
greedy client sheds itself instead of filling the shared queue),
--max-conns caps concurrent connections (typed connection_limit), and
--max-frame-bytes caps one request line (typed frame_too_large; the
connection survives).

bench-serve drives that TCP stack in-process with an open-loop load
generator (deterministic arrival schedule — clients do not wait for
replies): workers {1,4} x offered load {50,90,110}% of the measured
closed-loop capacity, reporting p50/p90/p99 latency from *scheduled*
arrival to reply plus a saturation flag, merged into --out (default
BENCH_serve.json). --smoke shrinks the sweep for CI.
By default a full queue blocks the reader (backpressure); with
--reject-when-full admission runs through a degradation ladder driven by
queue depth (healthy -> degrade-to-fallback -> shed \"priority\":\"low\"
requests -> reject all) with hysteresis, instead of a binary \"queue
full\" cliff.

Fault tolerance: --workers N shards the queue over N supervised workers
(env DEEPOD_SERVE_WORKERS; default 1), each with a copy-on-write model
replica; a panicking worker is restarted and its in-flight requests are
retried up to --retry-budget times (deterministic backoff) before
failing with a typed \"worker crashed\" reply. --deadline-ms sheds
requests that wait longer than MS in the queue (\"deadline exceeded\")
before they reach a batch. Chaos-test the machinery with
DEEPOD_FAILPOINTS sites serve::worker_batch / serve::slow_batch /
serve::drop_reply (actions kill|panic|sleep[=MS]).

Caching: precompute bulk-answers the hot OD matrix — the top --cells
grid cells by trajectory frequency crossed with the top --slots weekly
time slots — and writes a checksummed oracle artifact fingerprinted
against the model file. serve --oracle FILE consults it (plus an
in-process LRU bounded by --cache-capacity, env DEEPOD_ORACLE /
DEEPOD_CACHE_CAPACITY) before queue admission: hits answer immediately
without consuming worker capacity; LRU entries expire when the wall
clock crosses a --cache-ttl-s slot boundary. A corrupt, version- or
fingerprint-mismatched oracle is rejected at startup with a warning and
serving continues cacheless. eval --oracle FILE verifies every oracle
entry stays bit-identical to a fresh model run and exits with the
degraded code (2) on any drift. Requests with a pre-epoch departure
(depart < 0) are rejected per request on the wire.

Precision: --precision int8 serves per-row-quantized weights (f32
accumulation) — faster and smaller, *gated* on accuracy: the int8 model
must stay within --int8-mape-bound percentage points of the f32 model's
MAPE on held-out orders (default 1.0). serve falls back to f32 with a
warning when the gate fails; eval prints both metric rows, the delta,
and the verdict, and exits with the degraded code (2) on a failing gate.

Global flags (any subcommand):
  --log-format <text|json>   structured-event format on stderr
                             (env DEEPOD_LOG_FORMAT; verbosity via
                             DEEPOD_LOG=off|error|warn|info|debug|trace)
  --metrics FILE             flush the metrics registry to FILE as
                             checksummed JSON at exit (env DEEPOD_METRICS)

Crash safety: train checkpoints atomically (default FILE.ckpt next to
--out) and `--resume` continues a killed run with bit-identical curves.
predict falls back to the route-tte baseline (exit code 2) when the model
file is missing or corrupt.
";

/// How a successfully-dispatched command finished. `Degraded` maps to a
/// dedicated exit code (2) so scripts can distinguish a fallback answer
/// from a clean one without parsing output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The command did exactly what was asked.
    Ok,
    /// The command produced an answer through a degraded path (e.g. the
    /// route-tte fallback after a corrupt model file).
    Degraded,
}

/// Serving/eval numeric precision selected with `--precision`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Precision {
    F32,
    Int8,
}

fn precision_of(args: &Args) -> Result<Precision, String> {
    match args.get("precision").unwrap_or("f32") {
        "f32" => Ok(Precision::F32),
        "int8" => Ok(Precision::Int8),
        other => Err(format!("unknown precision '{other}' (f32|int8)")),
    }
}

fn profile_of(name: &str) -> Result<CityProfile, String> {
    match name.to_ascii_lowercase().as_str() {
        "chengdu" => Ok(CityProfile::SynthChengdu),
        "xian" | "xi'an" => Ok(CityProfile::SynthXian),
        "beijing" => Ok(CityProfile::SynthBeijing),
        other => Err(format!("unknown profile '{other}' (chengdu|xian|beijing)")),
    }
}

/// Dispatches to the subcommand handlers.
pub fn dispatch(argv: &[String]) -> Result<Outcome, String> {
    let Some(cmd) = argv.first() else {
        return Err("no subcommand given".into());
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "simulate" => simulate(&Args::parse(rest)?),
        "train" => train(&Args::parse(rest)?),
        "predict" => predict(&Args::parse(rest)?),
        "eval" => eval_cmd(&Args::parse(rest)?),
        "precompute" => precompute_cmd(&Args::parse(rest)?),
        "serve" => serve(&Args::parse(rest)?),
        "bench-serve" => bench_serve(&Args::parse(rest)?),
        "info" => info(&Args::parse(rest)?),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(Outcome::Ok)
        }
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

fn simulate(args: &Args) -> Result<Outcome, String> {
    let profile = profile_of(args.require("profile")?)?;
    let orders = args.get_parsed("orders", 1_000usize)?;
    let out = args.require("out")?;
    println!("simulating {profile:?} with {orders} orders ...");
    let ds = DatasetBuilder::build(&DatasetConfig::for_profile(profile, orders));
    println!(
        "  {} segments | {} train / {} val / {} test orders",
        ds.net.num_edges(),
        ds.train.len(),
        ds.validation.len(),
        ds.test.len()
    );
    save_dataset(&ds, out)?;
    println!("wrote {out}");
    Ok(Outcome::Ok)
}

fn train(args: &Args) -> Result<Outcome, String> {
    let data = args.require("data")?;
    let out = args.require("out")?;
    let ds = load_dataset(data)?;
    let resume_path = args.get("resume");
    let checkpoint_every = args.get_parsed("checkpoint-every", 0usize)?;

    // Resume takes its entire configuration (and thread count) from the
    // checkpoint: the bit-identical-resume guarantee only holds when the
    // continued run is the same computation.
    let (cfg, threads, resume_ckpt) = match resume_path {
        Some(path) => {
            let ckpt = TrainingCheckpoint::load(Path::new(path))
                .map_err(|e| format!("loading checkpoint {path}: {e}"))?;
            println!(
                "resuming from {path} (epoch {}, step {})",
                ckpt.progress.epoch, ckpt.progress.step
            );
            (ckpt.model.config.clone(), ckpt.progress.threads, Some(ckpt))
        }
        None => {
            let mut cfg = DeepOdConfig::default();
            cfg.epochs = args.get_parsed("epochs", 8usize)?;
            cfg.loss_weight = args.get_parsed("loss-weight", 0.3f32)?;
            cfg.seed = args.get_parsed("seed", cfg.seed)?;
            cfg.validate()?;
            // 0 = DEEPOD_THREADS env or the machine's available parallelism.
            (cfg, args.get_parsed("threads", 0usize)?, None)
        }
    };

    println!(
        "training DeepOD on {} orders ({} epochs, w = {}, {} threads) ...",
        ds.train.len(),
        cfg.epochs,
        cfg.loss_weight,
        deepod_tensor::parallel::resolve_threads(threads)
    );
    let opts = TrainOptions {
        threads,
        verbose: args.has_switch("verbose"),
        ..Default::default()
    };
    let mut trainer =
        Trainer::new(&ds, cfg, opts).map_err(|e| format!("cannot start training: {e}"))?;
    if let Some(ckpt) = resume_ckpt {
        trainer
            .resume_from(ckpt)
            .map_err(|e| format!("cannot resume: {e}"))?;
    }

    // Checkpointing is on whenever any crash-safety flag is present; the
    // checkpoint file defaults to `<out>.ckpt` (resume keeps writing to
    // the file it resumed from unless told otherwise).
    let default_ckpt = format!("{out}.ckpt");
    let ckpt_path = args
        .get("checkpoint")
        .or(resume_path)
        .unwrap_or(&default_ckpt);
    let checkpointing =
        checkpoint_every > 0 || args.get("checkpoint").is_some() || resume_path.is_some();

    let report = if checkpointing {
        let policy = CheckpointPolicy {
            every_steps: checkpoint_every,
            path: ckpt_path.into(),
        };
        println!(
            "  checkpointing to {ckpt_path} ({})",
            if checkpoint_every > 0 {
                format!("every {checkpoint_every} steps + epoch boundaries")
            } else {
                "epoch boundaries".to_string()
            }
        );
        trainer
            .train_with_checkpoints(&policy)
            .map_err(|e| format!("training stopped: {e}"))?
    } else {
        trainer.train()
    };
    println!(
        "  done in {:.1}s — best validation MAE {:.1}s over {} steps",
        report.total_time_s, report.best_val_mae, report.total_steps
    );
    if let Some(report_path) = args.get("report") {
        let json = serde_json::to_string(&report).map_err(|e| e.to_string())?;
        io_guard::atomic_write_str(Path::new(report_path), &json)
            .map_err(|e| format!("writing report: {e}"))?;
        println!("wrote {report_path}");
    }
    let json = trainer.model().save_json().map_err(|e| e.to_string())?;
    io_guard::atomic_write_str(Path::new(out), &json).map_err(|e| format!("writing model: {e}"))?;
    println!("wrote {out}");
    Ok(Outcome::Ok)
}

fn load_model(path: &str) -> Result<DeepOdModel, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    DeepOdModel::load_json(&json).map_err(|e| format!("parsing {path}: {e}"))
}

/// Loads a model plus the fingerprint of its exact file bytes — the
/// identity an oracle artifact is bound to.
fn load_model_with_fingerprint(path: &str) -> Result<(DeepOdModel, String), String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let model = DeepOdModel::load_json(&json).map_err(|e| format!("parsing {path}: {e}"))?;
    Ok((
        model,
        deepod_core::oracle::model_fingerprint(json.as_bytes()),
    ))
}

fn predict(args: &Args) -> Result<Outcome, String> {
    let ds = load_dataset(args.require("data")?)?;
    let model_path = args.require("model")?;
    let (fx, fy) = args.get_point("from")?;
    let (tx, ty) = args.get_point("to")?;
    let depart: f64 = args.get_parsed("depart", 0.0f64)?;

    let od = OdInput {
        origin: Point::new(fx, fy),
        destination: Point::new(tx, ty),
        depart,
        weather: ds.traffic.weather().at(depart),
    };
    let dist_km = od.origin.dist(&od.destination) / 1000.0;

    // Graceful degradation: a missing or corrupt model file must not turn
    // an ETA query into a hard failure. Fall back to the route-tte
    // baseline (shortest route over historical segment speeds), warn
    // loudly, and exit with the dedicated "degraded" code.
    match load_model(model_path) {
        Ok(model) => {
            let ctx = FeatureContext::build(&ds, model.config.slot_seconds)
                .map_err(|e| format!("model slot configuration: {e}"))?;
            let reqs = [PredictRequest::Raw(od)];
            match model.estimate_batch(&ctx, &ds.net, &reqs, 1).remove(0) {
                Ok(resp) => {
                    let eta = resp.eta_seconds;
                    println!(
                        "ETA: {eta:.0}s ({:.1} min) for {dist_km:.1} km crow-fly, \
                         departing t = {depart:.0}s ({})",
                        eta / 60.0,
                        od.weather.label()
                    );
                    Ok(Outcome::Ok)
                }
                Err(e) => Err(e.to_string()),
            }
        }
        Err(why) => {
            deepod_core::obs::warn(
                "cli",
                "falling back to the route-tte baseline (degraded accuracy)",
                &[("why", why.as_str().into())],
            );
            let mut fallback = RouteTtePredictor::new();
            fallback.fit(&ds);
            match fallback.predict(&od) {
                Some(eta) => {
                    println!(
                        "ETA (route-tte fallback): {eta:.0}s ({:.1} min) for {dist_km:.1} km \
                         crow-fly, departing t = {depart:.0}s ({})",
                        eta / 60.0,
                        od.weather.label()
                    );
                    Ok(Outcome::Degraded)
                }
                None => Err(format!(
                    "model unusable ({why}) and the route-tte fallback could not match the \
                     origin/destination to the road network"
                )),
            }
        }
    }
}

fn eval_cmd(args: &Args) -> Result<Outcome, String> {
    let ds = load_dataset(args.require("data")?)?;
    let (model, fingerprint) = load_model_with_fingerprint(args.require("model")?)?;
    let ctx = FeatureContext::build(&ds, model.config.slot_seconds)
        .map_err(|e| format!("model slot configuration: {e}"))?;

    // Cache-vs-fresh drift gate: every oracle entry must stay
    // bit-identical to a fresh estimate_batch answer for this model.
    if let Some(oracle_path) = args.get("oracle") {
        let oracle = deepod_core::OdOracle::load(Path::new(oracle_path))
            .map_err(|e| format!("loading oracle {oracle_path}: {e}"))?;
        let rep = deepod_eval::check_drift(&oracle, &model, &ctx, &ds, &fingerprint, 0);
        println!("oracle drift gate: {rep}");
        if !rep.passed {
            return Ok(Outcome::Degraded);
        }
    }

    let reqs: Vec<PredictRequest> = ds.test.iter().map(|o| PredictRequest::Raw(o.od)).collect();
    let mut pairs = Vec::new();
    for (o, resp) in ds
        .test
        .iter()
        .zip(model.estimate_batch(&ctx, &ds.net, &reqs, 0))
    {
        if let Ok(resp) = resp {
            pairs.push(deepod_eval::PredPair {
                actual: o.travel_time as f32,
                predicted: resp.eta_seconds,
            });
        }
    }
    if pairs.is_empty() {
        return Err("no test order could be evaluated".into());
    }
    let m =
        deepod_eval::Metrics::from_pairs(&pairs).map_err(|e| format!("computing metrics: {e}"))?;
    println!(
        "test metrics over {} trips (f32): MAE {:.1}s | MAPE {:.2}% | MARE {:.2}%",
        pairs.len(),
        m.mae,
        m.mape_pct,
        m.mare_pct
    );
    if precision_of(args)? == Precision::Int8 {
        let bound = args.get_parsed(
            "int8-mape-bound",
            deepod_eval::PrecisionGate::DEFAULT_MAPE_DELTA_PCT,
        )?;
        let qm = deepod_core::QuantizedModel::from_model(&model);
        let rep = deepod_eval::PrecisionGate::new(bound)
            .evaluate(&model, &qm, &ctx, &ds, &ds.test, 0)
            .map_err(|e| format!("precision gate: {e}"))?;
        println!(
            "test metrics over {} trips (int8): MAE {:.1}s | MAPE {:.2}% | MARE {:.2}%",
            pairs.len(),
            rep.int8_metrics.mae,
            rep.int8_metrics.mape_pct,
            rep.int8_metrics.mare_pct
        );
        println!("precision gate: {rep}");
        if !rep.passed {
            return Ok(Outcome::Degraded);
        }
    }
    Ok(Outcome::Ok)
}

/// Precomputes the OD-oracle artifact: bulk-answers the hot OD matrix
/// (top `--cells` grid cells by trajectory endpoint frequency crossed
/// with the top `--slots` weekly time slots by departure frequency)
/// through the batched inference path and writes the checksummed,
/// model-fingerprinted artifact for `serve --oracle` / `eval --oracle`.
fn precompute_cmd(args: &Args) -> Result<Outcome, String> {
    use deepod_core::oracle::{precompute, PrecomputeSpec};
    let ds = load_dataset(args.require("data")?)?;
    let (model, fingerprint) = load_model_with_fingerprint(args.require("model")?)?;
    let out = args.require("out")?;
    let spec = PrecomputeSpec {
        cells: args.get_parsed("cells", 8usize)?,
        slots: args.get_parsed("slots", 16usize)?,
        cell_meters: args.get_parsed("cell-meters", 500.0f64)?,
    };
    let threads = args.get_parsed("threads", 0usize)?;
    let ctx = FeatureContext::build(&ds, model.config.slot_seconds)
        .map_err(|e| format!("model slot configuration: {e}"))?;
    println!(
        "precomputing hot OD matrix: top {} cells x top {} weekly slots ({} m grid) ...",
        spec.cells, spec.slots, spec.cell_meters
    );
    let oracle = precompute(&model, &ctx, &ds, &spec, fingerprint, threads);
    oracle
        .save(Path::new(out))
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {out}: {} entries over a {}x{} cell grid (model fingerprint {})",
        oracle.entries.len(),
        oracle.keyer.nx,
        oracle.keyer.ny,
        oracle.model_fingerprint
    );
    Ok(Outcome::Ok)
}

/// Builds the int8 serving backend, gated on accuracy: the quantized
/// model must stay within `--int8-mape-bound` percentage points of the
/// f32 model's MAPE on held-out orders. A failing (or unevaluable) gate
/// keeps the f32 model serving — precision is an optimization, never a
/// silent accuracy regression.
fn int8_backend(
    args: &Args,
    model: DeepOdModel,
    ctx: &FeatureContext,
    ds: &deepod_traj::CityDataset,
) -> Result<deepod_serve::Backend, String> {
    use deepod_serve::Backend;
    let bound = args.get_parsed(
        "int8-mape-bound",
        deepod_eval::PrecisionGate::DEFAULT_MAPE_DELTA_PCT,
    )?;
    let qm = deepod_core::QuantizedModel::from_model(&model);
    let sample = if ds.test.is_empty() {
        &ds.train
    } else {
        &ds.test
    };
    let sample = &sample[..sample.len().min(256)];
    match deepod_eval::PrecisionGate::new(bound).evaluate(&model, &qm, ctx, ds, sample, 0) {
        Ok(rep) if rep.passed => {
            deepod_core::obs::info(
                "serve",
                "int8 precision gate passed; serving quantized weights",
                &[
                    ("mape_delta_pp", f64::from(rep.mape_delta_pct).into()),
                    ("bound_pp", f64::from(rep.bound_pct).into()),
                    ("model_bytes", qm.size_bytes().into()),
                ],
            );
            Ok(Backend::Quantized(Box::new(qm)))
        }
        Ok(rep) => {
            deepod_core::obs::warn(
                "serve",
                "int8 precision gate FAILED; serving f32 weights instead",
                &[
                    ("mape_delta_pp", f64::from(rep.mape_delta_pct).into()),
                    ("bound_pp", f64::from(rep.bound_pct).into()),
                ],
            );
            Ok(Backend::Model(Box::new(model)))
        }
        Err(e) => {
            deepod_core::obs::warn(
                "serve",
                "int8 precision gate could not be evaluated; serving f32 weights",
                &[("why", e.to_string().into())],
            );
            Ok(Backend::Model(Box::new(model)))
        }
    }
}

/// Builds the serving cache tier from `--oracle` / `--cache-capacity`
/// (env `DEEPOD_ORACLE` / `DEEPOD_CACHE_CAPACITY`; flags win). A corrupt,
/// wrong-version, or fingerprint-mismatched oracle is *rejected with a
/// warning* and serving continues — cacheless if the LRU is off too —
/// because a stale cache is an accuracy incident while a cold one is
/// only a latency cost. Returns `None` when both tiers are off: the
/// engine then runs the historical bit-identical cacheless path.
fn cache_tier(
    ds: &deepod_traj::CityDataset,
    ctx: &FeatureContext,
    oracle_path: Option<&str>,
    capacity: usize,
    ttl_seconds: f64,
    model_path: &str,
    shards: usize,
) -> Result<Option<std::sync::Arc<deepod_serve::ServeCache>>, String> {
    use deepod_core::oracle::{model_fingerprint, OdKeyer, OdOracle};
    use deepod_serve::{CacheConfig, ServeCache};
    use std::sync::Arc;
    let oracle = match oracle_path {
        None => None,
        Some(path) => match OdOracle::load(Path::new(path)) {
            Ok(oracle) => {
                let bytes =
                    std::fs::read(model_path).map_err(|e| format!("reading {model_path}: {e}"))?;
                let fp = model_fingerprint(&bytes);
                if oracle.model_fingerprint == fp {
                    deepod_core::obs::info(
                        "serve",
                        "oracle artifact loaded",
                        &[
                            ("path", path.into()),
                            ("entries", oracle.entries.len().into()),
                        ],
                    );
                    Some(Arc::new(oracle))
                } else {
                    deepod_core::obs::warn(
                        "serve",
                        "oracle fingerprint does not match the model file; ignoring the oracle",
                        &[
                            ("oracle_fp", oracle.model_fingerprint.as_str().into()),
                            ("model_fp", fp.as_str().into()),
                        ],
                    );
                    None
                }
            }
            Err(e) => {
                deepod_core::obs::warn(
                    "serve",
                    "oracle artifact unusable; serving without it",
                    &[("path", path.into()), ("why", e.to_string().into())],
                );
                None
            }
        },
    };
    if oracle.is_none() && capacity == 0 {
        return Ok(None);
    }
    let keyer = match &oracle {
        Some(o) => o.keyer,
        None => OdKeyer::for_network(&ds.net, 500.0, *ctx.slots()),
    };
    let cache = ServeCache::new(
        keyer,
        oracle,
        CacheConfig {
            capacity,
            ttl_seconds,
            shards,
        },
    )
    .map_err(|e| format!("--cache-ttl-s: {e}"))?;
    Ok(Some(Arc::new(cache)))
}

fn serve(args: &Args) -> Result<Outcome, String> {
    use deepod_serve::net::{self, Submission};
    use deepod_serve::{Backend, EngineConfig, InferenceEngine};
    use std::io::{BufRead, Write};
    use std::sync::Arc;

    let ds = Arc::new(load_dataset(args.require("data")?)?);
    let model_path = args.require("model")?;
    // `--workers` beats DEEPOD_SERVE_WORKERS beats the single-worker
    // default (the historically bit-identical configuration).
    let default_workers = match deepod_core::configured_serve_workers() {
        0 => 1,
        n => n,
    };
    let config = EngineConfig {
        max_batch: args.get_parsed("max-batch", 64usize)?,
        max_wait_ms: args.get_parsed("max-wait-ms", 5u64)?,
        queue_capacity: args.get_parsed("queue", 256usize)?,
        threads: args.get_parsed("threads", 0usize)?,
        workers: args.get_parsed("workers", default_workers)?,
        deadline_ms: args.get_parsed("deadline-ms", 0u64)?,
        retry_budget: args.get_parsed("retry-budget", 0u32)?,
    };
    let reject_when_full = args.has_switch("reject-when-full");

    // Same graceful degradation as `predict`: an unusable model file keeps
    // the process serving through the route-tte baseline, each response
    // flagged degraded, and the whole run exits with the degraded code.
    let loaded = load_model(model_path);
    let (slot_seconds, degraded_backend) = match &loaded {
        Ok(model) => (model.config.slot_seconds, false),
        Err(_) => (DeepOdConfig::default().slot_seconds, true),
    };
    let ctx =
        FeatureContext::build(&ds, slot_seconds).map_err(|e| format!("slot configuration: {e}"))?;
    let backend = match loaded {
        Ok(model) => match precision_of(args)? {
            Precision::F32 => Backend::Model(Box::new(model)),
            Precision::Int8 => int8_backend(args, model, &ctx, &ds)?,
        },
        Err(why) => {
            deepod_core::obs::warn(
                "serve",
                "model unusable; serving route-tte fallback answers (degraded)",
                &[("why", why.as_str().into())],
            );
            let mut fallback = RouteTtePredictor::new();
            fallback.fit(&ds);
            Backend::RouteTte(Box::new(fallback))
        }
    };
    let precision_name = backend.precision_name();
    // Cache tier: flags beat DEEPOD_ORACLE / DEEPOD_CACHE_CAPACITY. With
    // an unusable model the process serves fallback answers only — those
    // are degraded and must never be cached, and no fingerprint exists to
    // validate an oracle against, so the whole tier stays off.
    let oracle_path: Option<String> = args
        .get("oracle")
        .map(str::to_string)
        .or_else(deepod_core::configured_oracle_path);
    let cache_capacity =
        args.get_parsed("cache-capacity", deepod_core::configured_cache_capacity())?;
    let cache_ttl_s = args.get_parsed("cache-ttl-s", 300.0f64)?;
    let cache = if degraded_backend {
        if oracle_path.is_some() || cache_capacity > 0 {
            deepod_core::obs::warn(
                "serve",
                "cache tier disabled: no usable model to validate answers against",
                &[],
            );
        }
        None
    } else {
        cache_tier(
            &ds,
            &ctx,
            oracle_path.as_deref(),
            cache_capacity,
            cache_ttl_s,
            model_path,
            config.workers.max(1),
        )?
    };
    // The degradation ladder only acts on the try_submit path, so the
    // per-request fallback replica is only worth fitting when
    // --reject-when-full enables that path (and the primary backend is not
    // already the fallback).
    let ladder_fallback = if reject_when_full && !matches!(backend, Backend::RouteTte(_)) {
        let mut fb = RouteTtePredictor::new();
        fb.fit(&ds);
        Some(fb)
    } else {
        None
    };
    let cache_enabled = cache.is_some();
    let engine = InferenceEngine::start_with_cache(
        backend,
        ladder_fallback,
        cache,
        ctx,
        Arc::clone(&ds),
        config,
    );
    if let Some(addr) = args.get("listen") {
        return serve_listen(args, engine, ds, addr, degraded_backend);
    }
    deepod_core::obs::info(
        "serve",
        "engine up; reading requests from stdin",
        &[
            ("max_batch", engine.config().max_batch.into()),
            ("max_wait_ms", engine.config().max_wait_ms.into()),
            ("queue", engine.config().queue_capacity.into()),
            ("workers", engine.config().workers.into()),
            ("deadline_ms", engine.config().deadline_ms.into()),
            (
                "retry_budget",
                u64::from(engine.config().retry_budget).into(),
            ),
            ("precision", precision_name.into()),
            ("degraded", degraded_backend.into()),
            ("cache", cache_enabled.into()),
            ("cache_capacity", cache_capacity.into()),
        ],
    );

    // Writer thread: prints responses strictly in submission order, so the
    // reader can keep enqueueing while earlier batches are still in flight.
    let (out_tx, out_rx) = std::sync::mpsc::channel::<Submission>();
    let writer = std::thread::spawn(move || {
        let stdout = std::io::stdout();
        let mut out = std::io::BufWriter::new(stdout.lock());
        for item in out_rx {
            let line = match item {
                Submission::Ready(line) => line,
                // The handle resolves rather than hangs — exactly one
                // line per id, even for a worker crash past its retry
                // budget, an expired deadline, or shutdown.
                Submission::Pending(id, rx) => net::render_reply(id, rx.recv()),
            };
            if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
                return; // stdout closed: the client is gone
            }
        }
    });

    // Admission policy: by default a full queue blocks this reader
    // (single-client backpressure); --reject-when-full runs the
    // degradation ladder with queue-full retries up to --retry-budget.
    let admission = if reject_when_full {
        net::Admission::Shed
    } else {
        net::Admission::Block
    };
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("reading stdin: {e}"))?;
        // Decoding and submission are the exact path the TCP front end
        // runs — the two modes cannot drift. Submitting while the
        // StdinLock is live is the intended single-producer design: only
        // this loop reads stdin, so nothing can contend the guard, and
        // the engine queue has its own backpressure.
        // deepod-audit: allow(lock-across-send)
        let Some(item) = net::process_line(&engine, &ds, &line, admission) else {
            continue; // blank line: no reply owed
        };
        // Same single-producer stdin loop; the writer thread never takes
        // the StdinLock, so handing off under it cannot deadlock.
        // deepod-audit: allow(lock-across-send)
        if out_tx.send(item).is_err() {
            break; // writer died (stdout closed): stop reading
        }
    }

    // EOF: close the intake, let the engine drain what it accepted, wait
    // for the writer to print the last response, then report how we ran.
    drop(out_tx);
    engine.shutdown();
    writer
        .join()
        .map_err(|_| "response writer panicked".to_string())?;
    if degraded_backend {
        Ok(Outcome::Degraded)
    } else {
        Ok(Outcome::Ok)
    }
}

/// `serve --listen ADDR`: the TCP front end. The engine is shared with
/// the listener's connection threads; the process serves until stdin
/// reaches EOF (the lifecycle contract a supervising parent drives —
/// close the child's stdin to stop it), then drains and exits.
fn serve_listen(
    args: &Args,
    engine: deepod_serve::InferenceEngine,
    ds: std::sync::Arc<deepod_traj::CityDataset>,
    addr: &str,
    degraded_backend: bool,
) -> Result<Outcome, String> {
    use deepod_serve::net::{NetConfig, NetServer};
    use std::io::BufRead;
    use std::sync::Arc;

    let defaults = NetConfig::default();
    let net_config = NetConfig {
        max_connections: args.get_parsed("max-conns", defaults.max_connections)?,
        max_in_flight: args.get_parsed("max-in-flight", defaults.max_in_flight)?,
        max_frame_bytes: args.get_parsed("max-frame-bytes", defaults.max_frame_bytes)?,
    };
    let engine = Arc::new(engine);
    let server = NetServer::start(Arc::clone(&engine), ds, addr, net_config)
        .map_err(|e| format!("binding {addr}: {e}"))?;
    deepod_core::obs::info(
        "serve",
        "engine up; serving over TCP",
        &[
            ("addr", server.local_addr().to_string().as_str().into()),
            ("workers", engine.config().workers.into()),
            ("max_conns", net_config.max_connections.into()),
            ("max_in_flight", net_config.max_in_flight.into()),
            ("degraded", degraded_backend.into()),
        ],
    );
    // First stdout line tells the parent where we actually bound (":0"
    // resolves to an ephemeral port). Stdout is line-buffered, so the
    // line is visible immediately.
    println!("{{\"listening\":\"{}\"}}", server.local_addr());
    for _ in std::io::stdin().lock().lines() {
        // Serve until stdin closes; input lines are ignored in TCP mode.
    }
    server.shutdown();
    if let Ok(engine) = Arc::try_unwrap(engine) {
        engine.shutdown();
    } // else: a straggler still holds a clone; its Drop closes the engine
    if degraded_backend {
        Ok(Outcome::Degraded)
    } else {
        Ok(Outcome::Ok)
    }
}

/// `bench-serve`: open-loop load generation against an in-process TCP
/// serving stack — workers {1, 4} × offered load {50, 90, 110}% of the
/// measured closed-loop capacity — reporting p50/p90/p99 latency and the
/// saturation knee into a BENCH-style JSON report.
fn bench_serve(args: &Args) -> Result<Outcome, String> {
    use deepod_bench::loadgen::{self, BenchEntry, LoadSpec};
    use deepod_serve::net::{NetConfig, NetServer};
    use deepod_serve::{Backend, EngineConfig, InferenceEngine, WireRequest};
    use std::sync::Arc;

    let ds = Arc::new(load_dataset(args.require("data")?)?);
    let model = load_model(args.require("model")?).map_err(|e| format!("loading model: {e}"))?;
    let smoke = args.has_switch("smoke");
    let out_path = args.get("out").unwrap_or("BENCH_serve.json").to_string();
    let (total, warmup, calibrate_n) = if smoke { (60, 10, 20) } else { (600, 100, 200) };

    // Template requests drawn from the dataset's own orders: realistic
    // OD pairs and departure times, ids rewritten per run.
    let template: Vec<WireRequest> = ds
        .train
        .iter()
        .take(64)
        .map(|o| WireRequest {
            id: 0,
            from: (o.od.origin.x, o.od.origin.y),
            to: (o.od.destination.x, o.od.destination.y),
            depart: o.od.depart,
            low_priority: false,
        })
        .collect();
    if template.is_empty() {
        return Err("dataset has no training orders to replay".into());
    }

    let mut entries: Vec<BenchEntry> = Vec::new();
    for workers in [1usize, 4] {
        let slot_seconds = model.config.slot_seconds;
        let ctx = FeatureContext::build(&ds, slot_seconds)
            .map_err(|e| format!("slot configuration: {e}"))?;
        let engine = Arc::new(InferenceEngine::start(
            Backend::Model(Box::new(model.clone())),
            ctx,
            Arc::clone(&ds),
            EngineConfig {
                workers,
                ..EngineConfig::default()
            },
        ));
        let server = NetServer::start(
            Arc::clone(&engine),
            Arc::clone(&ds),
            "127.0.0.1:0",
            NetConfig::default(),
        )
        .map_err(|e| format!("binding loopback: {e}"))?;
        let addr = server.local_addr().to_string();

        let capacity_rps = loadgen::calibrate(&addr, &template, calibrate_n)
            .map_err(|e| format!("calibrating against {addr}: {e}"))?;
        println!("workers={workers}: measured capacity {capacity_rps:.0} req/s");
        for load_pct in [50u32, 90, 110] {
            let spec = LoadSpec {
                offered_rps: capacity_rps * f64::from(load_pct) / 100.0,
                total,
                warmup,
            };
            let report = loadgen::run_open_loop(&addr, &template, &spec)
                .map_err(|e| format!("open-loop run against {addr}: {e}"))?;
            println!(
                "workers={workers} load={load_pct}%: offered {:.0} req/s, achieved {:.0} req/s, \
                 p50 {:.2} ms, p99 {:.2} ms, errors {}{}",
                report.offered_rps,
                report.achieved_rps,
                report.p50_ns as f64 / 1e6,
                report.p99_ns as f64 / 1e6,
                report.errors,
                if report.saturated { " [saturated]" } else { "" },
            );
            let mut entry = BenchEntry::from(&report);
            entry.id = format!("serve/net_openloop_w{workers}_u{load_pct}");
            entries.push(entry);
        }
        server.shutdown();
        if let Ok(engine) = Arc::try_unwrap(engine) {
            engine.shutdown();
        }
    }

    let existing = std::fs::read_to_string(&out_path).ok();
    let merged = loadgen::merge_bench_json(existing.as_deref(), "serve/net_openloop", &entries);
    io_guard::atomic_write_str(Path::new(&out_path), &merged)
        .map_err(|e| format!("writing {out_path}: {e}"))?;
    println!("wrote {} open-loop results to {out_path}", entries.len());
    Ok(Outcome::Ok)
}

fn info(args: &Args) -> Result<Outcome, String> {
    let ds = load_dataset(args.require("data")?)?;
    let (min, max) = ds.net.bounding_box();
    println!("profile: {:?}", ds.config.profile);
    println!(
        "network: {} nodes, {} segments, {:.1} x {:.1} km",
        ds.net.num_nodes(),
        ds.net.num_edges(),
        (max.x - min.x) / 1000.0,
        (max.y - min.y) / 1000.0
    );
    println!(
        "orders:  {} train / {} validation / {} test",
        ds.train.len(),
        ds.validation.len(),
        ds.test.len()
    );
    println!(
        "mean train travel time: {:.0}s",
        ds.mean_train_travel_time()
    );
    let mean_len: f64 = ds
        .train
        .iter()
        .map(|o| {
            o.trajectory
                .edges()
                .iter()
                .map(|&e| ds.net.edge(e).length)
                .sum::<f64>()
        })
        .sum::<f64>()
        / ds.train.len().max(1) as f64;
    println!("mean trip length: {:.0} m", mean_len);
    let mean_segs: f64 = ds
        .train
        .iter()
        .map(|o| o.trajectory.path.len() as f64)
        .sum::<f64>()
        / ds.train.len().max(1) as f64;
    println!("mean segments per trip: {mean_segs:.1}");
    Ok(Outcome::Ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_parsing() {
        assert_eq!(profile_of("chengdu").unwrap(), CityProfile::SynthChengdu);
        assert_eq!(profile_of("CHENGDU").unwrap(), CityProfile::SynthChengdu);
        assert_eq!(profile_of("xi'an").unwrap(), CityProfile::SynthXian);
        assert_eq!(profile_of("beijing").unwrap(), CityProfile::SynthBeijing);
        assert!(profile_of("gotham").is_err());
    }

    #[test]
    fn precision_flag_parsing() {
        let args = Args::parse(&["--precision".into(), "int8".into()]).unwrap();
        assert_eq!(precision_of(&args).unwrap(), Precision::Int8);
        let args = Args::parse(&[]).unwrap();
        assert_eq!(precision_of(&args).unwrap(), Precision::F32);
        let args = Args::parse(&["--precision".into(), "fp16".into()]).unwrap();
        assert!(precision_of(&args).is_err());
    }

    #[test]
    fn dispatch_rejects_unknown_and_empty() {
        assert!(dispatch(&[]).is_err());
        assert!(dispatch(&["destroy".into()]).is_err());
    }

    #[test]
    fn dispatch_help_ok() {
        assert!(dispatch(&["help".into()]).is_ok());
    }

    #[test]
    fn missing_required_flags_reported() {
        let err = dispatch(&["simulate".into()]).unwrap_err();
        assert!(err.contains("--profile"), "unexpected error: {err}");
        let err = dispatch(&["train".into()]).unwrap_err();
        assert!(err.contains("--data"), "unexpected error: {err}");
    }
}

//! Minimal `--flag value` argument parsing (no external dependency).

use std::collections::HashMap;

/// Parsed flags: `--key value` pairs plus bare `--switch`es.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses everything after the subcommand. `--key value` becomes a
    /// value; a `--key` followed by another flag (or nothing) becomes a
    /// switch. Errors on tokens that don't start with `--`.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let tok = &argv[i];
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected argument '{tok}' (flags start with --)"))?;
            if key.is_empty() {
                return Err("empty flag name".into());
            }
            let next_is_value = argv
                .get(i + 1)
                .map(|n| !n.starts_with("--"))
                .unwrap_or(false);
            if next_is_value {
                args.values.insert(key.to_string(), argv[i + 1].clone());
                i += 2;
            } else {
                args.switches.push(key.to_string());
                i += 1;
            }
        }
        Ok(args)
    }

    /// The value of a flag, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// A required flag's value.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// A flag parsed to a type, with a default when absent.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("cannot parse --{key} value '{v}'")),
        }
    }

    /// Whether a bare switch was passed.
    pub fn has_switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// Parses `x,y` into a coordinate pair.
    pub fn get_point(&self, key: &str) -> Result<(f64, f64), String> {
        let raw = self.require(key)?;
        let parts: Vec<&str> = raw.split(',').collect();
        if parts.len() != 2 {
            return Err(format!("--{key} expects 'x,y', got '{raw}'"));
        }
        let x = parts[0]
            .trim()
            .parse()
            .map_err(|_| format!("bad x in --{key}"))?;
        let y = parts[1]
            .trim()
            .parse()
            .map_err(|_| format!("bad y in --{key}"))?;
        Ok((x, y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|v| v.to_string()).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let a = Args::parse(&argv(&["--orders", "100", "--verbose", "--out", "x.json"])).unwrap();
        assert_eq!(a.get("orders"), Some("100"));
        assert_eq!(a.get("out"), Some("x.json"));
        assert!(a.has_switch("verbose"));
        assert!(!a.has_switch("orders"));
    }

    #[test]
    fn rejects_non_flags() {
        assert!(Args::parse(&argv(&["orders", "100"])).is_err());
    }

    #[test]
    fn typed_parsing_with_default() {
        let a = Args::parse(&argv(&["--epochs", "7"])).unwrap();
        assert_eq!(a.get_parsed("epochs", 3usize).unwrap(), 7);
        assert_eq!(a.get_parsed("missing", 3usize).unwrap(), 3);
        assert!(a.get_parsed::<usize>("epochs", 0).is_ok());
        let b = Args::parse(&argv(&["--epochs", "seven"])).unwrap();
        assert!(b.get_parsed::<usize>("epochs", 0).is_err());
    }

    #[test]
    fn point_parsing() {
        let a = Args::parse(&argv(&["--from", "12.5,-3"])).unwrap();
        assert_eq!(a.get_point("from").unwrap(), (12.5, -3.0));
        let b = Args::parse(&argv(&["--from", "12.5"])).unwrap();
        assert!(b.get_point("from").is_err());
    }

    #[test]
    fn require_reports_missing() {
        let a = Args::parse(&[]).unwrap();
        assert!(a.require("data").unwrap_err().contains("--data"));
    }
}

//! Dataset (de)serialization for the CLI: a `CityDataset` is not directly
//! serde-able (it holds the live traffic model), so the CLI stores the
//! *generating configuration* plus the materialized orders and rebuilds
//! deterministic state on load.

use deepod_roadnet::RoadNetwork;
use deepod_traffic::{CongestionModel, IncidentModel, TrafficModel, WeatherProcess};
use deepod_traj::{CityDataset, DatasetConfig, TaxiOrder};
use serde::{Deserialize, Serialize};

/// On-disk dataset representation.
#[derive(Serialize, Deserialize)]
pub struct DatasetFile {
    /// The generator config (for provenance and re-simulation).
    pub config: DatasetConfig,
    /// The road network.
    pub net: RoadNetwork,
    /// Train orders.
    pub train: Vec<TaxiOrder>,
    /// Validation orders.
    pub validation: Vec<TaxiOrder>,
    /// Test orders.
    pub test: Vec<TaxiOrder>,
}

impl DatasetFile {
    /// Captures a built dataset.
    pub fn from_dataset(ds: &CityDataset) -> Self {
        DatasetFile {
            config: ds.config.clone(),
            net: ds.net.clone(),
            train: ds.train.clone(),
            validation: ds.validation.clone(),
            test: ds.test.clone(),
        }
    }

    /// Restores a usable `CityDataset`. The traffic model is rebuilt from
    /// the config seed, which reproduces the generating process exactly
    /// (all stochastic state is seed-derived).
    pub fn into_dataset(self) -> CityDataset {
        let total_days = self.config.train_days + self.config.val_days + self.config.test_days;
        let horizon = total_days as f64 * 86_400.0;
        let mut rng = deepod_tensor::rng_from_seed(self.config.sim.seed ^ 0xA5A5_5A5A);
        let weather = WeatherProcess::sample(horizon + 86_400.0, 1800.0, &mut rng);
        let incidents = if self.config.incidents_per_day > 0.0 {
            IncidentModel::sample(&self.net, horizon, self.config.incidents_per_day, &mut rng)
        } else {
            IncidentModel::none()
        };
        let traffic = TrafficModel::new(&self.net, CongestionModel::default(), weather, &mut rng)
            .with_incidents(incidents);
        CityDataset {
            net: self.net,
            traffic,
            train: self.train,
            validation: self.validation,
            test: self.test,
            config: self.config,
        }
    }
}

/// Writes a dataset to a JSON file (atomically: a crash mid-write leaves
/// any previous file intact instead of a torn one).
pub fn save_dataset(ds: &CityDataset, path: &str) -> Result<(), String> {
    let file = DatasetFile::from_dataset(ds);
    let json = serde_json::to_string(&file).map_err(|e| e.to_string())?;
    deepod_core::io_guard::atomic_write_str(std::path::Path::new(path), &json)
        .map_err(|e| format!("writing dataset: {e}"))
}

/// Reads a dataset from a JSON file.
pub fn load_dataset(path: &str) -> Result<CityDataset, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let file: DatasetFile =
        serde_json::from_str(&json).map_err(|e| format!("parsing {path}: {e}"))?;
    Ok(file.into_dataset())
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepod_roadnet::CityProfile;
    use deepod_traj::DatasetBuilder;

    #[test]
    fn round_trip_preserves_orders_and_network() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 40));
        let dir = std::env::temp_dir().join("deepod_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        let path = path.to_str().unwrap();

        save_dataset(&ds, path).unwrap();
        let back = load_dataset(path).unwrap();
        assert_eq!(back.net.num_edges(), ds.net.num_edges());
        assert_eq!(back.train.len(), ds.train.len());
        assert_eq!(back.test.len(), ds.test.len());
        assert_eq!(back.train[0].travel_time, ds.train[0].travel_time);
        // Rebuilt traffic model reproduces weather (seed-derived).
        assert_eq!(
            back.traffic.weather().at(1000.0),
            ds.traffic.weather().at(1000.0)
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_dataset("/nonexistent/deepod.json").is_err());
    }
}

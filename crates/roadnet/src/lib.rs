//! Road-network substrate for DeepOD: graph structures, a synthetic city
//! generator (our stand-in for the OpenStreetMap extracts the paper uses),
//! the edge-to-node "line graph" conversion of §4.1 (Fig. 4), shortest-path
//! routing (static and time-dependent), and a uniform-grid spatial index
//! used by map matching and the TEMP baseline.
//!
//! Geometry is planar: positions are meters in a local city frame, which
//! keeps distance math exact and fast (the paper's cities span < 100 km, so
//! a projected frame is what any production system would use internally).

mod astar;
mod citygen;
mod geometry;
mod graph;
mod line_graph;
mod routing;
mod spatial;

pub use astar::{alt_shortest_path, astar_shortest_path, Landmarks};
pub use citygen::{CityConfig, CityProfile};
pub use geometry::{Point, SegmentProjection};
pub use graph::{EdgeId, NodeId, RoadClass, RoadEdge, RoadNetwork, RoadNode};
pub use line_graph::{LineGraph, LineGraphEdge};
pub use routing::{dijkstra_shortest_path, time_dependent_route, RoutePath, Router, RoutingError};
pub use spatial::SpatialGrid;

//! Planar geometry: points in a local metric frame plus the point-to-segment
//! projection used by map matching and by the OD-input matching step.

use serde::{Deserialize, Serialize};

/// A point in the city's local planar frame, in meters.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct Point {
    /// Easting in meters.
    pub x: f64,
    /// Northing in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn dist(&self, other: &Point) -> f64 {
        let (dx, dy) = (self.x - other.x, self.y - other.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared distance (avoids the sqrt in comparisons).
    pub fn dist2(&self, other: &Point) -> f64 {
        let (dx, dy) = (self.x - other.x, self.y - other.y);
        dx * dx + dy * dy
    }

    /// Linear interpolation: `self + t * (other - self)`.
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }
}

/// Result of projecting a point onto a segment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SegmentProjection {
    /// Closest point on the segment.
    pub point: Point,
    /// Parameter along the segment in `[0, 1]` (0 = start, 1 = end).
    pub t: f64,
    /// Distance from the query point to `point`.
    pub distance: f64,
}

/// Projects `p` onto the segment `a -> b`.
pub fn project_onto_segment(p: &Point, a: &Point, b: &Point) -> SegmentProjection {
    let (abx, aby) = (b.x - a.x, b.y - a.y);
    let len2 = abx * abx + aby * aby;
    let t = if len2 <= f64::EPSILON {
        0.0
    } else {
        (((p.x - a.x) * abx + (p.y - a.y) * aby) / len2).clamp(0.0, 1.0)
    };
    let point = a.lerp(b, t);
    SegmentProjection {
        point,
        t,
        distance: p.dist(&point),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.dist(&b) - 5.0).abs() < 1e-12);
        assert!((a.dist2(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point::new(5.0, 10.0));
    }

    #[test]
    fn projection_interior() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let p = Point::new(4.0, 3.0);
        let pr = project_onto_segment(&p, &a, &b);
        assert!((pr.t - 0.4).abs() < 1e-12);
        assert!((pr.distance - 3.0).abs() < 1e-12);
        assert_eq!(pr.point, Point::new(4.0, 0.0));
    }

    #[test]
    fn projection_clamps_to_endpoints() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let before = project_onto_segment(&Point::new(-5.0, 1.0), &a, &b);
        assert_eq!(before.t, 0.0);
        assert_eq!(before.point, a);
        let after = project_onto_segment(&Point::new(15.0, 1.0), &a, &b);
        assert_eq!(after.t, 1.0);
        assert_eq!(after.point, b);
    }

    #[test]
    fn projection_degenerate_segment() {
        let a = Point::new(2.0, 2.0);
        let pr = project_onto_segment(&Point::new(5.0, 6.0), &a, &a);
        assert_eq!(pr.t, 0.0);
        assert!((pr.distance - 5.0).abs() < 1e-12);
    }
}

//! Shortest-path routing over the road network.
//!
//! Two modes back the taxi-order simulator (DESIGN.md §2.2):
//!
//! * [`dijkstra_shortest_path`] — static edge costs (distance or free-flow
//!   time), used for distance features in the STNN/MURAT baselines.
//! * [`time_dependent_route`] — edge traversal cost depends on the clock
//!   time at which the edge is *entered*, which makes routes respect
//!   rush-hour congestion; the simulator perturbs costs per driver to get
//!   realistic route diversity for the same OD pair (the paper's Fig. 1).

use crate::graph::{EdgeId, NodeId, RoadNetwork};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Typed routing failures. `Unreachable` is the routine outcome callers
/// branch on (disconnected OD pairs are normal on real networks); the
/// other variants are caller or internal contract violations that used to
/// be panics — deepod-lint denies those in library code, so they surface
/// as errors the CLI can turn into messages instead of backtraces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RoutingError {
    /// An endpoint is not a node of this network.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// Number of nodes in the network.
        num_nodes: usize,
    },
    /// No path exists from `from` to `to`.
    Unreachable {
        /// Origin node id.
        from: u32,
        /// Destination node id.
        to: u32,
    },
    /// Path reconstruction walked off the predecessor tree — an internal
    /// invariant violation (should never happen on a well-formed search).
    BrokenPredecessorChain {
        /// Node at which the chain broke.
        node: u32,
    },
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range (network has {num_nodes} nodes)"
                )
            }
            RoutingError::Unreachable { from, to } => {
                write!(f, "node {to} is unreachable from node {from}")
            }
            RoutingError::BrokenPredecessorChain { node } => {
                write!(f, "internal error: predecessor chain broken at node {node}")
            }
        }
    }
}

impl std::error::Error for RoutingError {}

/// A route: the edge sequence plus total cost (seconds or meters, depending
/// on the cost function).
#[derive(Clone, Debug, PartialEq)]
pub struct RoutePath {
    /// Edges in travel order.
    pub edges: Vec<EdgeId>,
    /// Total accumulated cost.
    pub cost: f64,
}

impl RoutePath {
    /// Total geometric length of the route in meters.
    pub fn length(&self, net: &RoadNetwork) -> f64 {
        self.edges.iter().map(|&e| net.edge(e).length).sum()
    }
}

#[derive(PartialEq)]
struct HeapItem {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost.
        other.cost.total_cmp(&self.cost)
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn run_dijkstra(
    net: &RoadNetwork,
    from: NodeId,
    to: NodeId,
    mut edge_cost: impl FnMut(EdgeId, f64) -> f64,
) -> Result<RoutePath, RoutingError> {
    let n = net.num_nodes();
    for node in [from, to] {
        if node.idx() >= n {
            return Err(RoutingError::NodeOutOfRange {
                node: node.0,
                num_nodes: n,
            });
        }
    }
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<EdgeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[from.idx()] = 0.0;
    heap.push(HeapItem {
        cost: 0.0,
        node: from,
    });

    while let Some(HeapItem { cost, node }) = heap.pop() {
        if node == to {
            break;
        }
        if cost > dist[node.idx()] {
            continue;
        }
        for &eid in net.out_edges(node) {
            let e = net.edge(eid);
            let c = edge_cost(eid, cost);
            debug_assert!(c >= 0.0, "negative edge cost");
            let nd = cost + c;
            if nd < dist[e.to.idx()] {
                dist[e.to.idx()] = nd;
                pred[e.to.idx()] = Some(eid);
                heap.push(HeapItem {
                    cost: nd,
                    node: e.to,
                });
            }
        }
    }

    if dist[to.idx()].is_infinite() {
        return Err(RoutingError::Unreachable {
            from: from.0,
            to: to.0,
        });
    }
    // Reconstruct.
    let mut edges = Vec::new();
    let mut cur = to;
    while cur != from {
        let Some(eid) = pred[cur.idx()] else {
            return Err(RoutingError::BrokenPredecessorChain { node: cur.0 });
        };
        edges.push(eid);
        cur = net.edge(eid).from;
    }
    edges.reverse();
    Ok(RoutePath {
        edges,
        cost: dist[to.idx()],
    })
}

/// Dijkstra with a static per-edge cost. Fails with
/// [`RoutingError::Unreachable`] when no path exists (use `.ok()` where
/// unreachable pairs are routine and should just be skipped).
pub fn dijkstra_shortest_path(
    net: &RoadNetwork,
    from: NodeId,
    to: NodeId,
    mut edge_cost: impl FnMut(EdgeId) -> f64,
) -> Result<RoutePath, RoutingError> {
    run_dijkstra(net, from, to, |e, _| edge_cost(e))
}

/// Time-dependent Dijkstra: the cost of an edge is a function of the
/// absolute time (seconds) at which it is entered. `depart` is the start
/// time at `from`; the returned `cost` is the arrival time minus `depart`.
///
/// Correct under the FIFO assumption (leaving later never means arriving
/// earlier), which our congestion model satisfies: speeds change per time
/// slot but traversal ordering is preserved.
pub fn time_dependent_route(
    net: &RoadNetwork,
    from: NodeId,
    to: NodeId,
    depart: f64,
    mut edge_time: impl FnMut(EdgeId, f64) -> f64,
) -> Result<RoutePath, RoutingError> {
    run_dijkstra(net, from, to, |e, elapsed| edge_time(e, depart + elapsed))
}

/// Convenience router bundling a network reference with cached distance
/// queries.
pub struct Router<'a> {
    net: &'a RoadNetwork,
}

impl<'a> Router<'a> {
    /// Creates a router over `net`.
    pub fn new(net: &'a RoadNetwork) -> Self {
        Router { net }
    }

    /// Shortest route by geometric distance.
    pub fn shortest_by_distance(
        &self,
        from: NodeId,
        to: NodeId,
    ) -> Result<RoutePath, RoutingError> {
        dijkstra_shortest_path(self.net, from, to, |e| self.net.edge(e).length)
    }

    /// Shortest route by free-flow travel time.
    pub fn fastest_free_flow(&self, from: NodeId, to: NodeId) -> Result<RoutePath, RoutingError> {
        dijkstra_shortest_path(self.net, from, to, |e| {
            let edge = self.net.edge(e);
            edge.length / edge.class.free_flow_speed()
        })
    }

    /// Network (shortest-path) distance in meters.
    pub fn network_distance(&self, from: NodeId, to: NodeId) -> Result<f64, RoutingError> {
        self.shortest_by_distance(from, to).map(|p| p.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::graph::RoadClass;

    /// Line of 4 nodes with a shortcut that is longer but "faster".
    fn diamond() -> (RoadNetwork, Vec<NodeId>) {
        let mut g = RoadNetwork::new();
        let a = g.add_node(Point::new(0.0, 0.0));
        let b = g.add_node(Point::new(100.0, 100.0));
        let c = g.add_node(Point::new(100.0, -100.0));
        let d = g.add_node(Point::new(200.0, 0.0));
        g.add_edge(a, b, RoadClass::Local); // ~141 m
        g.add_edge(b, d, RoadClass::Local); // ~141 m
        g.add_edge(a, c, RoadClass::Highway); // ~141 m
        g.add_edge(c, d, RoadClass::Highway); // ~141 m
        (g, vec![a, b, c, d])
    }

    #[test]
    fn distance_route_ties_broken_consistently() {
        let (g, ns) = diamond();
        let r = Router::new(&g);
        let p = r.shortest_by_distance(ns[0], ns[3]).unwrap();
        assert_eq!(p.edges.len(), 2);
        assert!((p.cost - 2.0 * (100.0f64 * 100.0 * 2.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn fastest_route_prefers_highway() {
        let (g, ns) = diamond();
        let r = Router::new(&g);
        let p = r.fastest_free_flow(ns[0], ns[3]).unwrap();
        // Both paths have equal length; the highway one is faster.
        let via: Vec<NodeId> = p.edges.iter().map(|&e| g.edge(e).to).collect();
        assert!(via.contains(&ns[2]), "should route via the highway node");
    }

    #[test]
    fn unreachable_is_a_typed_error() {
        let mut g = RoadNetwork::new();
        let a = g.add_node(Point::new(0.0, 0.0));
        let b = g.add_node(Point::new(10.0, 0.0));
        // Only edge b -> a; a -> b unreachable.
        g.add_edge(b, a, RoadClass::Local);
        assert_eq!(
            dijkstra_shortest_path(&g, a, b, |_| 1.0),
            Err(RoutingError::Unreachable { from: a.0, to: b.0 })
        );
    }

    #[test]
    fn out_of_range_node_is_a_typed_error() {
        let (g, ns) = diamond();
        let ghost = NodeId(999);
        let err = dijkstra_shortest_path(&g, ns[0], ghost, |_| 1.0).unwrap_err();
        assert_eq!(
            err,
            RoutingError::NodeOutOfRange {
                node: 999,
                num_nodes: 4
            }
        );
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn self_route_is_empty() {
        let (g, ns) = diamond();
        let p = dijkstra_shortest_path(&g, ns[0], ns[0], |_| 1.0).unwrap();
        assert!(p.edges.is_empty());
        assert_eq!(p.cost, 0.0);
    }

    #[test]
    fn time_dependent_switches_route_with_congestion() {
        let (g, ns) = diamond();
        // Congest the highway (edges 2,3) after t = 1000 s.
        let edge_time = |e: EdgeId, t: f64| -> f64 {
            let base = g.edge(e).length / g.edge(e).class.free_flow_speed();
            if (e.idx() == 2 || e.idx() == 3) && t >= 1000.0 {
                base * 10.0
            } else {
                base
            }
        };
        let early = time_dependent_route(&g, ns[0], ns[3], 0.0, edge_time).unwrap();
        let via_early: Vec<NodeId> = early.edges.iter().map(|&e| g.edge(e).to).collect();
        assert!(
            via_early.contains(&ns[2]),
            "early trip should use the highway"
        );

        let late = time_dependent_route(&g, ns[0], ns[3], 2000.0, edge_time).unwrap();
        let via_late: Vec<NodeId> = late.edges.iter().map(|&e| g.edge(e).to).collect();
        assert!(
            via_late.contains(&ns[1]),
            "congested trip should avoid the highway"
        );
        assert!(late.cost > early.cost);
    }

    #[test]
    fn route_length_sums_edges() {
        let (g, ns) = diamond();
        let r = Router::new(&g);
        let p = r.shortest_by_distance(ns[0], ns[3]).unwrap();
        assert!((p.length(&g) - p.cost).abs() < 1e-9);
    }

    #[test]
    fn network_distance_matches_route_cost() {
        let (g, ns) = diamond();
        let r = Router::new(&g);
        assert_eq!(
            r.network_distance(ns[0], ns[3]).unwrap(),
            r.shortest_by_distance(ns[0], ns[3]).unwrap().cost
        );
    }
}

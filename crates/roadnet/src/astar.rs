//! Goal-directed routing: A* with an admissible Euclidean heuristic, and
//! ALT (A*–Landmarks–Triangle inequality) with precomputed landmark
//! distances — the production-grade query path a deployed ETA service
//! would use instead of plain Dijkstra.

use crate::graph::{EdgeId, NodeId, RoadNetwork};
use crate::routing::RoutePath;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(PartialEq)]
struct HeapItem {
    priority: f64,
    cost: f64,
    node: NodeId,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        other.priority.total_cmp(&self.priority)
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn astar_with_heuristic(
    net: &RoadNetwork,
    from: NodeId,
    to: NodeId,
    mut edge_cost: impl FnMut(EdgeId) -> f64,
    mut h: impl FnMut(NodeId) -> f64,
) -> Option<(RoutePath, usize)> {
    let n = net.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<EdgeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    let mut settled = 0usize;
    dist[from.idx()] = 0.0;
    heap.push(HeapItem {
        priority: h(from),
        cost: 0.0,
        node: from,
    });

    while let Some(HeapItem { cost, node, .. }) = heap.pop() {
        if cost > dist[node.idx()] {
            continue;
        }
        settled += 1;
        if node == to {
            let mut edges = Vec::new();
            let mut cur = to;
            while cur != from {
                let eid = pred[cur.idx()]?;
                edges.push(eid);
                cur = net.edge(eid).from;
            }
            edges.reverse();
            return Some((RoutePath { edges, cost }, settled));
        }
        for &eid in net.out_edges(node) {
            let e = net.edge(eid);
            let c = edge_cost(eid);
            debug_assert!(c >= 0.0);
            let nd = cost + c;
            if nd < dist[e.to.idx()] {
                dist[e.to.idx()] = nd;
                pred[e.to.idx()] = Some(eid);
                heap.push(HeapItem {
                    priority: nd + h(e.to),
                    cost: nd,
                    node: e.to,
                });
            }
        }
    }
    None
}

/// A* shortest path by geometric length with the straight-line heuristic
/// (admissible because edge length ≥ straight-line displacement).
/// Returns the path and the number of settled nodes (for comparisons).
pub fn astar_shortest_path(
    net: &RoadNetwork,
    from: NodeId,
    to: NodeId,
) -> Option<(RoutePath, usize)> {
    let goal = net.node(to).pos;
    astar_with_heuristic(
        net,
        from,
        to,
        |e| net.edge(e).length,
        |v| net.node(v).pos.dist(&goal),
    )
}

/// Precomputed landmark distances for the ALT heuristic.
///
/// For each landmark L we store `d(L, v)` and `d(v, L)` for all v; the
/// triangle inequality then gives the admissible lower bound
/// `max_L |d(L, t) − d(L, v)|, |d(v, L) − d(t, L)|` on `d(v, t)`.
pub struct Landmarks {
    /// `to_lm[l][v]` = distance from v to landmark l.
    to_lm: Vec<Vec<f64>>,
    /// `from_lm[l][v]` = distance from landmark l to v.
    from_lm: Vec<Vec<f64>>,
}

impl Landmarks {
    /// Selects `k` landmarks spread over the network boundary (farthest-
    /// point selection) and runs 2k Dijkstras to fill the tables.
    pub fn build(net: &RoadNetwork, k: usize) -> Self {
        assert!(k >= 1, "need at least one landmark");
        let n = net.num_nodes();
        // Farthest-point selection seeded at node 0.
        let mut landmarks = vec![NodeId(0)];
        while landmarks.len() < k.min(n) {
            let mut best = (0.0, NodeId(0));
            for v in 0..n {
                let p = net.node(NodeId(v as u32)).pos;
                let d = landmarks
                    .iter()
                    .map(|&l| p.dist(&net.node(l).pos))
                    .fold(f64::INFINITY, f64::min);
                if d > best.0 {
                    best = (d, NodeId(v as u32));
                }
            }
            landmarks.push(best.1);
        }

        let mut to_lm = Vec::with_capacity(landmarks.len());
        let mut from_lm = Vec::with_capacity(landmarks.len());
        for &l in &landmarks {
            from_lm.push(Self::sssp(net, l, false));
            to_lm.push(Self::sssp(net, l, true));
        }
        Landmarks { to_lm, from_lm }
    }

    /// Single-source shortest path distances; `reverse` traverses edges
    /// backwards (distances *to* the source).
    fn sssp(net: &RoadNetwork, source: NodeId, reverse: bool) -> Vec<f64> {
        let n = net.num_nodes();
        let mut dist = vec![f64::INFINITY; n];
        let mut heap = BinaryHeap::new();
        dist[source.idx()] = 0.0;
        heap.push(HeapItem {
            priority: 0.0,
            cost: 0.0,
            node: source,
        });
        while let Some(HeapItem { cost, node, .. }) = heap.pop() {
            if cost > dist[node.idx()] {
                continue;
            }
            let edges = if reverse {
                net.in_edges(node)
            } else {
                net.out_edges(node)
            };
            for &eid in edges {
                let e = net.edge(eid);
                let next = if reverse { e.from } else { e.to };
                let nd = cost + e.length;
                if nd < dist[next.idx()] {
                    dist[next.idx()] = nd;
                    heap.push(HeapItem {
                        priority: nd,
                        cost: nd,
                        node: next,
                    });
                }
            }
        }
        dist
    }

    /// The ALT lower bound on `d(v, t)`.
    pub fn lower_bound(&self, v: NodeId, t: NodeId) -> f64 {
        let mut best: f64 = 0.0;
        for l in 0..self.to_lm.len() {
            // d(v,t) ≥ d(v,L) − d(t,L) and d(v,t) ≥ d(L,t) − d(L,v).
            let a = self.to_lm[l][v.idx()] - self.to_lm[l][t.idx()];
            let b = self.from_lm[l][t.idx()] - self.from_lm[l][v.idx()];
            if a.is_finite() {
                best = best.max(a);
            }
            if b.is_finite() {
                best = best.max(b);
            }
        }
        best
    }
}

/// ALT shortest path: A* with the landmark heuristic. Returns the path and
/// the number of settled nodes.
pub fn alt_shortest_path(
    net: &RoadNetwork,
    landmarks: &Landmarks,
    from: NodeId,
    to: NodeId,
) -> Option<(RoutePath, usize)> {
    astar_with_heuristic(
        net,
        from,
        to,
        |e| net.edge(e).length,
        |v| landmarks.lower_bound(v, to),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::citygen::{CityConfig, CityProfile};
    use crate::routing::dijkstra_shortest_path;
    use rand::Rng;

    fn net() -> RoadNetwork {
        CityConfig::profile(CityProfile::SynthChengdu).generate()
    }

    #[test]
    fn astar_matches_dijkstra_costs() {
        let net = net();
        let mut rng = deepod_tensor::rng_from_seed(21);
        let n = net.num_nodes();
        for _ in 0..25 {
            let a = NodeId(rng.gen_range(0..n) as u32);
            let b = NodeId(rng.gen_range(0..n) as u32);
            let d = dijkstra_shortest_path(&net, a, b, |e| net.edge(e).length).ok();
            let s = astar_shortest_path(&net, a, b);
            match (d, s) {
                (Some(dp), Some((sp, _))) => {
                    assert!(
                        (dp.cost - sp.cost).abs() < 1e-6,
                        "cost mismatch {} vs {}",
                        dp.cost,
                        sp.cost
                    );
                }
                (None, None) => {}
                (d, s) => panic!(
                    "reachability mismatch: {:?} vs {:?}",
                    d.is_some(),
                    s.is_some()
                ),
            }
        }
    }

    #[test]
    fn alt_matches_dijkstra_costs() {
        let net = net();
        let lm = Landmarks::build(&net, 4);
        let mut rng = deepod_tensor::rng_from_seed(22);
        let n = net.num_nodes();
        for _ in 0..25 {
            let a = NodeId(rng.gen_range(0..n) as u32);
            let b = NodeId(rng.gen_range(0..n) as u32);
            let d = dijkstra_shortest_path(&net, a, b, |e| net.edge(e).length).ok();
            let s = alt_shortest_path(&net, &lm, a, b);
            match (d, s) {
                (Some(dp), Some((sp, _))) => {
                    assert!((dp.cost - sp.cost).abs() < 1e-6);
                }
                (None, None) => {}
                _ => panic!("reachability mismatch"),
            }
        }
    }

    #[test]
    fn heuristics_settle_fewer_nodes_than_dijkstra() {
        // Dijkstra settles ~everything for cross-town queries; A*/ALT must
        // prune. Compare settled counts on average.
        let net = net();
        let lm = Landmarks::build(&net, 4);
        let mut rng = deepod_tensor::rng_from_seed(23);
        let n = net.num_nodes();
        let mut astar_total = 0usize;
        let mut alt_total = 0usize;
        let mut pairs = 0usize;
        for _ in 0..20 {
            let a = NodeId(rng.gen_range(0..n) as u32);
            let b = NodeId(rng.gen_range(0..n) as u32);
            if let (Some((_, sa)), Some((_, sl))) = (
                astar_shortest_path(&net, a, b),
                alt_shortest_path(&net, &lm, a, b),
            ) {
                astar_total += sa;
                alt_total += sl;
                pairs += 1;
            }
        }
        assert!(pairs > 10);
        // ALT's bound is at least as tight as nothing; both should settle
        // well under the full graph on average.
        assert!(astar_total / pairs < n, "A* settles everything");
        assert!(
            alt_total <= astar_total * 2,
            "ALT should be competitive with A*"
        );
    }

    #[test]
    fn landmark_bound_is_admissible() {
        let net = net();
        let lm = Landmarks::build(&net, 4);
        let mut rng = deepod_tensor::rng_from_seed(24);
        let n = net.num_nodes();
        for _ in 0..30 {
            let a = NodeId(rng.gen_range(0..n) as u32);
            let b = NodeId(rng.gen_range(0..n) as u32);
            if let Ok(p) = dijkstra_shortest_path(&net, a, b, |e| net.edge(e).length) {
                let bound = lm.lower_bound(a, b);
                assert!(
                    bound <= p.cost + 1e-6,
                    "inadmissible bound {bound} > true {p:?}",
                );
            }
        }
    }

    #[test]
    fn self_route() {
        let net = net();
        let (p, _) = astar_shortest_path(&net, NodeId(5), NodeId(5)).unwrap();
        assert!(p.edges.is_empty());
        assert_eq!(p.cost, 0.0);
    }
}

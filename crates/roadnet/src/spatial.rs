//! Uniform-grid spatial index over road-segment geometry.
//!
//! Used by the HMM map matcher (candidate segment lookup per GPS point), by
//! the OD-input matching step (snap an origin/destination point to its road
//! segment), and by the TEMP baseline (nearby historical origins and
//! destinations).

use crate::geometry::{project_onto_segment, Point, SegmentProjection};
use crate::graph::{EdgeId, RoadNetwork};

/// A uniform grid over the network's bounding box, bucketing edge ids by the
/// cells their segment passes through.
#[derive(Clone, Debug)]
pub struct SpatialGrid {
    min: Point,
    cell: f64,
    nx: usize,
    ny: usize,
    buckets: Vec<Vec<EdgeId>>,
}

impl SpatialGrid {
    /// Builds a grid with the given cell size (meters) over `net`.
    pub fn build(net: &RoadNetwork, cell: f64) -> Self {
        assert!(cell > 0.0, "cell size must be positive");
        let (min, max) = net.bounding_box();
        let nx = deepod_tensor::ceil_count((max.x - min.x) / cell).max(1);
        let ny = deepod_tensor::ceil_count((max.y - min.y) / cell).max(1);
        let mut grid = SpatialGrid {
            min,
            cell,
            nx,
            ny,
            buckets: vec![Vec::new(); nx * ny],
        };
        for (i, e) in net.edges().iter().enumerate() {
            let id = EdgeId(i as u32);
            let a = net.node(e.from).pos;
            let b = net.node(e.to).pos;
            // Walk the segment at half-cell resolution and insert into every
            // cell touched; cheap and conservative for segments ≤ a few km.
            let steps = deepod_tensor::ceil_count(a.dist(&b) / (cell * 0.5)).max(1);
            let mut last = usize::MAX;
            for s in 0..=steps {
                let p = a.lerp(&b, s as f64 / steps as f64);
                let idx = grid.cell_index(&p);
                if idx != last {
                    if grid.buckets[idx].last() != Some(&id) {
                        grid.buckets[idx].push(id);
                    }
                    last = idx;
                }
            }
        }
        grid
    }

    fn clampi(&self, v: f64, n: usize) -> usize {
        if v < 0.0 {
            0
        } else {
            (v as usize).min(n - 1)
        }
    }

    fn cell_index(&self, p: &Point) -> usize {
        let cx = self.clampi((p.x - self.min.x) / self.cell, self.nx);
        let cy = self.clampi((p.y - self.min.y) / self.cell, self.ny);
        cy * self.nx + cx
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Edge ids whose geometry passes within roughly `radius` of `p`
    /// (superset: grid-cell resolution, caller filters by exact distance).
    pub fn edges_near(&self, p: &Point, radius: f64) -> Vec<EdgeId> {
        let r = deepod_tensor::ceil_count(radius / self.cell) as isize + 1;
        let cx = self.clampi((p.x - self.min.x) / self.cell, self.nx) as isize;
        let cy = self.clampi((p.y - self.min.y) / self.cell, self.ny) as isize;
        let mut out = Vec::new();
        for dy in -r..=r {
            for dx in -r..=r {
                let (x, y) = (cx + dx, cy + dy);
                if x < 0 || y < 0 || x >= self.nx as isize || y >= self.ny as isize {
                    continue;
                }
                out.extend_from_slice(&self.buckets[y as usize * self.nx + x as usize]);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The nearest edge to `p` within `radius`, with its projection; `None`
    /// when no edge geometry lies within the radius.
    pub fn nearest_edge(
        &self,
        net: &RoadNetwork,
        p: &Point,
        radius: f64,
    ) -> Option<(EdgeId, SegmentProjection)> {
        let mut best: Option<(EdgeId, SegmentProjection)> = None;
        for id in self.edges_near(p, radius) {
            let e = net.edge(id);
            let pr = project_onto_segment(p, &net.node(e.from).pos, &net.node(e.to).pos);
            if pr.distance <= radius && best.as_ref().is_none_or(|(_, b)| pr.distance < b.distance)
            {
                best = Some((id, pr));
            }
        }
        best
    }

    /// The `k` nearest edges within `radius`, closest first.
    pub fn k_nearest_edges(
        &self,
        net: &RoadNetwork,
        p: &Point,
        radius: f64,
        k: usize,
    ) -> Vec<(EdgeId, SegmentProjection)> {
        let mut cands: Vec<(EdgeId, SegmentProjection)> = self
            .edges_near(p, radius)
            .into_iter()
            .map(|id| {
                let e = net.edge(id);
                (
                    id,
                    project_onto_segment(p, &net.node(e.from).pos, &net.node(e.to).pos),
                )
            })
            .filter(|(_, pr)| pr.distance <= radius)
            .collect();
        cands.sort_by(|a, b| a.1.distance.total_cmp(&b.1.distance));
        cands.truncate(k);
        cands
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadClass;

    fn grid_city() -> RoadNetwork {
        // 3x3 lattice, 100 m spacing, bidirectional edges.
        let mut g = RoadNetwork::new();
        let mut ids = Vec::new();
        for y in 0..3 {
            for x in 0..3 {
                ids.push(g.add_node(Point::new(x as f64 * 100.0, y as f64 * 100.0)));
            }
        }
        let at = |x: usize, y: usize| ids[y * 3 + x];
        for y in 0..3 {
            for x in 0..3 {
                if x + 1 < 3 {
                    g.add_edge(at(x, y), at(x + 1, y), RoadClass::Local);
                    g.add_edge(at(x + 1, y), at(x, y), RoadClass::Local);
                }
                if y + 1 < 3 {
                    g.add_edge(at(x, y), at(x, y + 1), RoadClass::Local);
                    g.add_edge(at(x, y + 1), at(x, y), RoadClass::Local);
                }
            }
        }
        g
    }

    #[test]
    fn nearest_edge_snaps_to_closest_road() {
        let net = grid_city();
        let grid = SpatialGrid::build(&net, 50.0);
        // A point 10 m above the bottom row between x=0 and x=100.
        let (id, pr) = grid
            .nearest_edge(&net, &Point::new(50.0, 10.0), 100.0)
            .unwrap();
        let e = net.edge(id);
        let a = net.node(e.from).pos;
        let b = net.node(e.to).pos;
        // Must be one of the two directed edges along y=0.
        assert_eq!(a.y, 0.0);
        assert_eq!(b.y, 0.0);
        assert!((pr.distance - 10.0).abs() < 1e-9);
    }

    #[test]
    fn nearest_edge_none_outside_radius() {
        let net = grid_city();
        let grid = SpatialGrid::build(&net, 50.0);
        assert!(grid
            .nearest_edge(&net, &Point::new(50.0, 60.0), 5.0)
            .is_none());
    }

    #[test]
    fn k_nearest_sorted() {
        let net = grid_city();
        let grid = SpatialGrid::build(&net, 50.0);
        let res = grid.k_nearest_edges(&net, &Point::new(50.0, 50.0), 80.0, 6);
        assert!(!res.is_empty());
        for w in res.windows(2) {
            assert!(w[0].1.distance <= w[1].1.distance);
        }
    }

    #[test]
    fn edges_near_dedups() {
        let net = grid_city();
        let grid = SpatialGrid::build(&net, 50.0);
        let edges = grid.edges_near(&Point::new(100.0, 100.0), 150.0);
        let mut sorted = edges.clone();
        sorted.dedup();
        assert_eq!(edges.len(), sorted.len());
    }

    #[test]
    fn all_edges_findable_from_their_midpoint() {
        let net = grid_city();
        let grid = SpatialGrid::build(&net, 40.0);
        for i in 0..net.num_edges() {
            let id = EdgeId(i as u32);
            let mid = net.edge_midpoint(id);
            let near = grid.edges_near(&mid, 10.0);
            assert!(
                near.contains(&id),
                "edge {id:?} missing near its own midpoint"
            );
        }
    }
}

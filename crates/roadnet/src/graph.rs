//! The directed, weighted road-network graph of §2: vertices are road-segment
//! end points, edges are road segments.

use crate::geometry::Point;
use serde::{Deserialize, Serialize};

/// Index of a vertex in a [`RoadNetwork`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Index of a directed road segment in a [`RoadNetwork`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// Index as usize.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Index as usize.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Functional class of a road segment; drives free-flow speed and congestion
/// sensitivity in the traffic model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum RoadClass {
    /// Grade-separated, high speed.
    Highway,
    /// Major urban road.
    Arterial,
    /// Connector between arterials and locals.
    Collector,
    /// Residential / service street.
    Local,
}

impl RoadClass {
    /// Free-flow speed in m/s for this class.
    pub fn free_flow_speed(self) -> f64 {
        match self {
            RoadClass::Highway => 27.8,   // ~100 km/h
            RoadClass::Arterial => 16.7,  // ~60 km/h
            RoadClass::Collector => 11.1, // ~40 km/h
            RoadClass::Local => 8.3,      // ~30 km/h
        }
    }

    /// How strongly rush-hour congestion slows this class down (multiplier
    /// on the congestion term; highways congest hardest in relative terms).
    pub fn congestion_sensitivity(self) -> f64 {
        match self {
            RoadClass::Highway => 1.0,
            RoadClass::Arterial => 0.85,
            RoadClass::Collector => 0.6,
            RoadClass::Local => 0.4,
        }
    }
}

/// A vertex: an end point of one or more road segments.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoadNode {
    /// Planar position.
    pub pos: Point,
}

/// A directed road segment `⟨v¹ → v⁻¹, w⟩`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoadEdge {
    /// First end point (the paper's v¹).
    pub from: NodeId,
    /// Last end point (the paper's v⁻¹).
    pub to: NodeId,
    /// Length in meters (the weight w in §2).
    pub length: f64,
    /// Functional class.
    pub class: RoadClass,
}

/// A directed, weighted road network `G = ⟨V, E⟩`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RoadNetwork {
    nodes: Vec<RoadNode>,
    edges: Vec<RoadEdge>,
    /// Outgoing edge ids per node.
    out_edges: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per node.
    in_edges: Vec<Vec<EdgeId>>,
}

impl RoadNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a vertex and returns its id.
    pub fn add_node(&mut self, pos: Point) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(RoadNode { pos });
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        id
    }

    /// Adds a directed road segment; its length is the Euclidean distance
    /// between the end points.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, class: RoadClass) -> EdgeId {
        let length = self.nodes[from.idx()].pos.dist(&self.nodes[to.idx()].pos);
        self.add_edge_with_length(from, to, class, length)
    }

    /// Adds a directed road segment with an explicit length (e.g. a curved
    /// road longer than the straight-line distance).
    pub fn add_edge_with_length(
        &mut self,
        from: NodeId,
        to: NodeId,
        class: RoadClass,
        length: f64,
    ) -> EdgeId {
        assert!(from.idx() < self.nodes.len(), "from node out of range");
        assert!(to.idx() < self.nodes.len(), "to node out of range");
        assert!(length >= 0.0, "negative edge length");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(RoadEdge {
            from,
            to,
            length,
            class,
        });
        self.out_edges[from.idx()].push(id);
        self.in_edges[to.idx()].push(id);
        id
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed road segments.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Vertex accessor.
    pub fn node(&self, id: NodeId) -> &RoadNode {
        &self.nodes[id.idx()]
    }

    /// Edge accessor.
    pub fn edge(&self, id: EdgeId) -> &RoadEdge {
        &self.edges[id.idx()]
    }

    /// All edges.
    pub fn edges(&self) -> &[RoadEdge] {
        &self.edges
    }

    /// All nodes.
    pub fn nodes(&self) -> &[RoadNode] {
        &self.nodes
    }

    /// Outgoing edges of a vertex.
    pub fn out_edges(&self, id: NodeId) -> &[EdgeId] {
        &self.out_edges[id.idx()]
    }

    /// Incoming edges of a vertex.
    pub fn in_edges(&self, id: NodeId) -> &[EdgeId] {
        &self.in_edges[id.idx()]
    }

    /// Geometric midpoint of an edge (used when an edge stands in for a
    /// matched GPS point).
    pub fn edge_midpoint(&self, id: EdgeId) -> Point {
        let e = self.edge(id);
        self.node(e.from).pos.lerp(&self.node(e.to).pos, 0.5)
    }

    /// Point at fraction `t ∈ [0,1]` along an edge.
    pub fn point_on_edge(&self, id: EdgeId, t: f64) -> Point {
        let e = self.edge(id);
        self.node(e.from)
            .pos
            .lerp(&self.node(e.to).pos, t.clamp(0.0, 1.0))
    }

    /// Edges whose head is the tail of `next`, i.e. `e.to == next.from`
    /// (adjacency in the paper's Fig. 4 sense).
    pub fn edges_are_consecutive(&self, prev: EdgeId, next: EdgeId) -> bool {
        self.edge(prev).to == self.edge(next).from
    }

    /// Bounding box `(min, max)` over all node positions. Panics on an empty
    /// network.
    pub fn bounding_box(&self) -> (Point, Point) {
        assert!(!self.nodes.is_empty(), "bounding box of empty network");
        let mut min = Point::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for n in &self.nodes {
            min.x = min.x.min(n.pos.x);
            min.y = min.y.min(n.pos.y);
            max.x = max.x.max(n.pos.x);
            max.y = max.y.max(n.pos.y);
        }
        (min, max)
    }

    /// Total length of all road segments in meters.
    pub fn total_length(&self) -> f64 {
        self.edges.iter().map(|e| e.length).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (RoadNetwork, Vec<NodeId>, Vec<EdgeId>) {
        let mut g = RoadNetwork::new();
        let a = g.add_node(Point::new(0.0, 0.0));
        let b = g.add_node(Point::new(100.0, 0.0));
        let c = g.add_node(Point::new(100.0, 100.0));
        let e0 = g.add_edge(a, b, RoadClass::Arterial);
        let e1 = g.add_edge(b, c, RoadClass::Local);
        let e2 = g.add_edge(b, a, RoadClass::Arterial);
        (g, vec![a, b, c], vec![e0, e1, e2])
    }

    #[test]
    fn construction_and_adjacency() {
        let (g, ns, es) = tiny();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_edges(ns[1]), &[es[1], es[2]]);
        assert_eq!(g.in_edges(ns[0]), &[es[2]]);
        assert!((g.edge(es[0]).length - 100.0).abs() < 1e-9);
    }

    #[test]
    fn consecutive_edges() {
        let (g, _, es) = tiny();
        assert!(g.edges_are_consecutive(es[0], es[1]));
        assert!(g.edges_are_consecutive(es[0], es[2]));
        assert!(!g.edges_are_consecutive(es[1], es[0]));
    }

    #[test]
    fn geometry_helpers() {
        let (g, _, es) = tiny();
        let mid = g.edge_midpoint(es[0]);
        assert_eq!(mid, Point::new(50.0, 0.0));
        let q = g.point_on_edge(es[1], 0.25);
        assert_eq!(q, Point::new(100.0, 25.0));
        // Clamping.
        assert_eq!(g.point_on_edge(es[1], 2.0), Point::new(100.0, 100.0));
    }

    #[test]
    fn bounding_box_and_total_length() {
        let (g, _, _) = tiny();
        let (min, max) = g.bounding_box();
        assert_eq!(min, Point::new(0.0, 0.0));
        assert_eq!(max, Point::new(100.0, 100.0));
        assert!((g.total_length() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn road_class_speeds_ordered() {
        assert!(RoadClass::Highway.free_flow_speed() > RoadClass::Arterial.free_flow_speed());
        assert!(RoadClass::Arterial.free_flow_speed() > RoadClass::Collector.free_flow_speed());
        assert!(RoadClass::Collector.free_flow_speed() > RoadClass::Local.free_flow_speed());
    }

    #[test]
    fn explicit_length_edge() {
        let mut g = RoadNetwork::new();
        let a = g.add_node(Point::new(0.0, 0.0));
        let b = g.add_node(Point::new(100.0, 0.0));
        let e = g.add_edge_with_length(a, b, RoadClass::Local, 140.0);
        assert_eq!(g.edge(e).length, 140.0);
    }
}

//! Synthetic city generator — the substitution for the paper's
//! OpenStreetMap extracts (CRN/XRN/BRN, §6.1).
//!
//! Cities are irregular lattices: a grid of intersections with jittered
//! positions, a ring-and-spine of arterials, a sparse highway skeleton, and
//! randomly removed local streets so the graph is not a perfect grid. All
//! edges are bidirectional (two directed segments) except a fraction of
//! one-way locals, mirroring real urban networks.

use crate::geometry::Point;
use crate::graph::{NodeId, RoadClass, RoadNetwork};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Named profiles mirroring the paper's three datasets at laptop scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CityProfile {
    /// Analogue of Chengdu (CRN): mid-size, dense trips.
    SynthChengdu,
    /// Analogue of Xi'an (XRN): slightly larger network, fewer trips.
    SynthXian,
    /// Analogue of Beijing (BRN): the largest network, longest trips.
    SynthBeijing,
}

/// Parameters of the generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CityConfig {
    /// Intersections along x.
    pub grid_x: usize,
    /// Intersections along y.
    pub grid_y: usize,
    /// Block edge length in meters.
    pub block: f64,
    /// Std-dev of intersection position jitter, meters.
    pub jitter: f64,
    /// Probability of dropping a local street (irregularity).
    pub drop_prob: f64,
    /// Probability that a kept local street is one-way.
    pub one_way_prob: f64,
    /// Every `arterial_every`-th row/column is an arterial.
    pub arterial_every: usize,
    /// A river runs between grid rows `river_row` and `river_row + 1`
    /// (when `Some`): only every `bridge_every`-th column crosses it.
    /// Real cities' waterways are what make network distance deviate
    /// sharply from straight-line distance.
    pub river_row: Option<usize>,
    /// Column stride between bridges over the river.
    pub bridge_every: usize,
    /// RNG seed.
    pub seed: u64,
}

impl CityConfig {
    /// Config for a named profile. Sizes are scaled so experiments run on a
    /// single CPU core; relative ordering follows the paper (BRN ≫ CRN ≈
    /// XRN; XRN slightly larger than CRN).
    pub fn profile(p: CityProfile) -> Self {
        match p {
            CityProfile::SynthChengdu => CityConfig {
                grid_x: 12,
                grid_y: 12,
                block: 400.0,
                jitter: 45.0,
                drop_prob: 0.08,
                one_way_prob: 0.10,
                arterial_every: 4,
                river_row: Some(5),
                bridge_every: 4,
                seed: 0xC4E6_0001,
            },
            CityProfile::SynthXian => CityConfig {
                grid_x: 14,
                grid_y: 13,
                block: 420.0,
                jitter: 50.0,
                drop_prob: 0.10,
                one_way_prob: 0.12,
                arterial_every: 4,
                river_row: Some(6),
                bridge_every: 5,
                seed: 0x71A6_0002,
            },
            CityProfile::SynthBeijing => CityConfig {
                grid_x: 22,
                grid_y: 20,
                block: 500.0,
                jitter: 55.0,
                drop_prob: 0.09,
                one_way_prob: 0.10,
                arterial_every: 5,
                river_row: Some(9),
                bridge_every: 5,
                seed: 0xBE11_0003,
            },
        }
    }

    /// Generates the road network for this config.
    pub fn generate(&self) -> RoadNetwork {
        let mut rng = deepod_tensor::rng_from_seed(self.seed);
        let mut net = RoadNetwork::new();
        let (gx, gy) = (self.grid_x, self.grid_y);
        assert!(gx >= 2 && gy >= 2, "grid must be at least 2x2");

        // Intersections with jitter.
        let mut ids: Vec<NodeId> = Vec::with_capacity(gx * gy);
        for y in 0..gy {
            for x in 0..gx {
                let jx: f64 = rng.gen_range(-self.jitter..=self.jitter);
                let jy: f64 = rng.gen_range(-self.jitter..=self.jitter);
                let p = Point::new(x as f64 * self.block + jx, y as f64 * self.block + jy);
                ids.push(net.add_node(p));
            }
        }
        let at = |x: usize, y: usize| ids[y * gx + x];

        let class_for = |x: usize, y: usize, horizontal: bool| -> RoadClass {
            let on_arterial = if horizontal {
                y.is_multiple_of(self.arterial_every)
            } else {
                x.is_multiple_of(self.arterial_every)
            };
            // Outer ring is a highway.
            let on_ring = if horizontal {
                y == 0 || y == gy - 1
            } else {
                x == 0 || x == gx - 1
            };
            if on_ring {
                RoadClass::Highway
            } else if on_arterial {
                RoadClass::Arterial
            } else if (x + y).is_multiple_of(3) {
                RoadClass::Collector
            } else {
                RoadClass::Local
            }
        };

        let add_street =
            |net: &mut RoadNetwork, rng: &mut StdRng, a: NodeId, b: NodeId, class: RoadClass| {
                let droppable = matches!(class, RoadClass::Local | RoadClass::Collector);
                if droppable && rng.gen_bool(self.drop_prob) {
                    return;
                }
                net.add_edge(a, b, class);
                let one_way = droppable && rng.gen_bool(self.one_way_prob);
                if !one_way {
                    net.add_edge(b, a, class);
                }
            };

        for y in 0..gy {
            for x in 0..gx {
                if x + 1 < gx {
                    add_street(
                        &mut net,
                        &mut rng,
                        at(x, y),
                        at(x + 1, y),
                        class_for(x, y, true),
                    );
                }
                if y + 1 < gy {
                    // The river blocks all north-south streets between
                    // river_row and river_row+1 except bridge columns.
                    let blocked = self
                        .river_row
                        .is_some_and(|r| y == r && x % self.bridge_every.max(1) != 0);
                    if blocked {
                        continue;
                    }
                    let class = if self.river_row == Some(y) {
                        RoadClass::Arterial // bridges are arterials
                    } else {
                        class_for(x, y, false)
                    };
                    add_street(&mut net, &mut rng, at(x, y), at(x, y + 1), class);
                }
            }
        }

        // A couple of diagonal expressways through the center for route
        // diversity (so the fastest path is not always the Manhattan one).
        let step = self.arterial_every.max(2);
        let mut d = 1;
        while d + step < gx.min(gy) {
            let crosses_river = self.river_row.is_some_and(|r| d <= r && r < d + step);
            if !crosses_river {
                net.add_edge(at(d, d), at(d + step, d + step), RoadClass::Highway);
                net.add_edge(at(d + step, d + step), at(d, d), RoadClass::Highway);
            }
            d += step;
        }

        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::Router;

    #[test]
    fn profiles_generate_expected_scale() {
        let crn = CityConfig::profile(CityProfile::SynthChengdu).generate();
        let xrn = CityConfig::profile(CityProfile::SynthXian).generate();
        let brn = CityConfig::profile(CityProfile::SynthBeijing).generate();
        assert!(crn.num_edges() > 300, "CRN edges {}", crn.num_edges());
        assert!(
            xrn.num_edges() > crn.num_edges(),
            "XRN should be larger than CRN"
        );
        assert!(
            brn.num_edges() > 2 * crn.num_edges(),
            "BRN should dwarf CRN"
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let a = CityConfig::profile(CityProfile::SynthChengdu).generate();
        let b = CityConfig::profile(CityProfile::SynthChengdu).generate();
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.edge(crate::EdgeId(5)).from, b.edge(crate::EdgeId(5)).from);
    }

    #[test]
    fn strongly_connected_enough_for_routing() {
        // The ring is never dropped, so any two ring-adjacent corners must
        // be mutually reachable; sample a few random node pairs too.
        let net = CityConfig::profile(CityProfile::SynthChengdu).generate();
        let r = Router::new(&net);
        let mut rng = deepod_tensor::rng_from_seed(9);
        let mut ok = 0;
        let trials = 40;
        for _ in 0..trials {
            let a = NodeId(Rng::gen_range(&mut rng, 0..net.num_nodes()) as u32);
            let b = NodeId(Rng::gen_range(&mut rng, 0..net.num_nodes()) as u32);
            if r.shortest_by_distance(a, b).is_ok() {
                ok += 1;
            }
        }
        assert!(ok >= trials * 9 / 10, "only {ok}/{trials} routable pairs");
    }

    #[test]
    fn has_all_road_classes() {
        let net = CityConfig::profile(CityProfile::SynthChengdu).generate();
        let mut seen = std::collections::HashSet::new();
        for e in net.edges() {
            seen.insert(e.class);
        }
        assert!(seen.contains(&RoadClass::Highway));
        assert!(seen.contains(&RoadClass::Arterial));
        assert!(seen.contains(&RoadClass::Local));
    }

    #[test]
    fn edge_lengths_reasonable() {
        let cfg = CityConfig::profile(CityProfile::SynthChengdu);
        let net = cfg.generate();
        for e in net.edges() {
            assert!(e.length > 0.0);
            // Jittered blocks and diagonals: nothing should exceed ~6 blocks.
            assert!(e.length < cfg.block * 6.0, "edge length {}", e.length);
        }
    }
}

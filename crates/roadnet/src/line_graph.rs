//! The edge-to-node graph conversion of §4.1 (Fig. 4): to embed *road
//! segments* with node-embedding techniques (node2vec/DeepWalk/LINE), the
//! road network is converted into a new graph whose nodes are the original
//! directed edges, with a link `⟨v_ik, v_kj⟩` whenever segments `⟨v_i,v_k⟩`
//! and `⟨v_k,v_j⟩` are consecutive. Link weights are the co-occurrence
//! frequency of the two segments on the same historical trajectory.

use crate::graph::{EdgeId, RoadNetwork};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A weighted directed link in the line graph.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LineGraphEdge {
    /// Target node (a road segment id in the original network).
    pub to: EdgeId,
    /// Link weight (trajectory co-occurrence count, or 1 baseline).
    pub weight: f64,
}

/// Line graph of the road network: one node per road segment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LineGraph {
    /// Outgoing weighted links per road segment.
    adj: Vec<Vec<LineGraphEdge>>,
}

impl LineGraph {
    /// Builds the line graph with all structural links at weight
    /// `base_weight` (the paper implicitly smooths unseen transitions: a
    /// positive base weight keeps random walks able to traverse roads no
    /// historical trajectory covered).
    pub fn from_network(net: &RoadNetwork, base_weight: f64) -> Self {
        let mut adj = vec![Vec::new(); net.num_edges()];
        for (i, e) in net.edges().iter().enumerate() {
            for &next in net.out_edges(e.to) {
                // Skip immediate U-turns (the reverse directed edge): they
                // are physically possible but pollute the embedding
                // neighborhoods and essentially never appear in map-matched
                // trajectories.
                let ne = net.edge(next);
                if ne.to == e.from && ne.from == e.to {
                    continue;
                }
                adj[i].push(LineGraphEdge {
                    to: next,
                    weight: base_weight,
                });
            }
        }
        LineGraph { adj }
    }

    /// Builds the line graph and sets link weights from trajectory
    /// co-occurrence counts: for every consecutive pair `(e_i, e_{i+1})` in
    /// a historical trajectory's edge sequence, the link weight increases
    /// by 1 (Fig. 4's example). Pairs not linked structurally are ignored.
    pub fn from_trajectories<'a>(
        net: &RoadNetwork,
        trajectories: impl Iterator<Item = &'a [EdgeId]>,
        base_weight: f64,
    ) -> Self {
        let mut g = Self::from_network(net, base_weight);
        let mut counts: HashMap<(EdgeId, EdgeId), f64> = HashMap::new();
        for traj in trajectories {
            for w in traj.windows(2) {
                *counts.entry((w[0], w[1])).or_insert(0.0) += 1.0;
            }
        }
        for ((from, to), c) in counts {
            if let Some(link) = g.adj[from.idx()].iter_mut().find(|l| l.to == to) {
                link.weight += c;
            }
        }
        g
    }

    /// Number of nodes (road segments).
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Total number of directed links.
    pub fn num_links(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Outgoing links of a segment-node.
    pub fn neighbors(&self, id: EdgeId) -> &[LineGraphEdge] {
        &self.adj[id.idx()]
    }

    /// The weight of the link `from -> to`, if present.
    pub fn link_weight(&self, from: EdgeId, to: EdgeId) -> Option<f64> {
        self.adj[from.idx()]
            .iter()
            .find(|l| l.to == to)
            .map(|l| l.weight)
    }

    /// Nodes with no outgoing links (dead ends); useful to diagnose
    /// generated cities.
    pub fn num_sinks(&self) -> usize {
        self.adj.iter().filter(|a| a.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::graph::RoadClass;

    /// a -> b -> c plus b -> d, with reverse edges.
    fn net() -> (RoadNetwork, Vec<EdgeId>) {
        let mut g = RoadNetwork::new();
        let a = g.add_node(Point::new(0.0, 0.0));
        let b = g.add_node(Point::new(100.0, 0.0));
        let c = g.add_node(Point::new(200.0, 0.0));
        let d = g.add_node(Point::new(100.0, 100.0));
        let e_ab = g.add_edge(a, b, RoadClass::Local);
        let e_bc = g.add_edge(b, c, RoadClass::Local);
        let e_bd = g.add_edge(b, d, RoadClass::Local);
        let e_ba = g.add_edge(b, a, RoadClass::Local);
        (g, vec![e_ab, e_bc, e_bd, e_ba])
    }

    #[test]
    fn structural_links() {
        let (g, es) = net();
        let lg = LineGraph::from_network(&g, 1.0);
        assert_eq!(lg.num_nodes(), 4);
        // e_ab links to e_bc and e_bd, but NOT to e_ba (U-turn).
        let n: Vec<EdgeId> = lg.neighbors(es[0]).iter().map(|l| l.to).collect();
        assert!(n.contains(&es[1]));
        assert!(n.contains(&es[2]));
        assert!(!n.contains(&es[3]));
    }

    #[test]
    fn co_occurrence_weights() {
        let (g, es) = net();
        // Two trajectories pass a->b->c, one passes a->b->d.
        let t1 = vec![es[0], es[1]];
        let t2 = vec![es[0], es[1]];
        let t3 = vec![es[0], es[2]];
        let lg = LineGraph::from_trajectories(
            &g,
            [t1.as_slice(), t2.as_slice(), t3.as_slice()].into_iter(),
            1.0,
        );
        assert_eq!(lg.link_weight(es[0], es[1]), Some(3.0)); // base 1 + 2
        assert_eq!(lg.link_weight(es[0], es[2]), Some(2.0)); // base 1 + 1
    }

    #[test]
    fn unknown_link_ignored() {
        let (g, es) = net();
        // e_bc -> e_ab is not structurally consecutive (c has no out-edges).
        let t = vec![es[1], es[0]];
        let lg = LineGraph::from_trajectories(&g, [t.as_slice()].into_iter(), 1.0);
        assert_eq!(lg.link_weight(es[1], es[0]), None);
    }

    #[test]
    fn sinks_counted() {
        let (g, _) = net();
        let lg = LineGraph::from_network(&g, 1.0);
        // e_bc and e_bd end at degree-0-out nodes; e_ba's only continuation
        // is the U-turn back onto e_ab, which is excluded => 3 sinks.
        assert_eq!(lg.num_sinks(), 3);
    }

    #[test]
    fn paper_fig4_example_weighting() {
        // Rebuild the Fig. 4 micro-example: edges (4,6) and (6,3) co-passed
        // by two historical trajectories -> weight 2 on ⟨v46, v63⟩.
        let mut g = RoadNetwork::new();
        let v4 = g.add_node(Point::new(0.0, 0.0));
        let v6 = g.add_node(Point::new(100.0, 0.0));
        let v3 = g.add_node(Point::new(200.0, 0.0));
        let e46 = g.add_edge(v4, v6, RoadClass::Local);
        let e63 = g.add_edge(v6, v3, RoadClass::Local);
        let t1 = vec![e46, e63];
        let t2 = vec![e46, e63];
        let lg = LineGraph::from_trajectories(&g, [t1.as_slice(), t2.as_slice()].into_iter(), 0.0);
        assert_eq!(lg.link_weight(e46, e63), Some(2.0));
    }
}

//! Fleet analysis: the data-engineering workload the paper's §2 pipeline
//! implies — take raw GPS traces from a taxi fleet, map-match them onto
//! the road network, recover spatio-temporal paths, and mine per-road and
//! per-hour congestion statistics.
//!
//! Run with: `cargo run --release -p deepod-bench --example fleet_analysis`

use deepod_roadnet::{CityProfile, SpatialGrid};
use deepod_traj::{
    sample_gps, DatasetBuilder, DatasetConfig, GpsNoise, HmmMapMatcher, MapMatchConfig,
};
use std::collections::HashMap;

fn main() {
    println!("fleet analysis — raw GPS -> map matching -> congestion mining");
    let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 250));

    // Emit raw GPS for a fleet of trips (3 s fixes, 8 m noise), as the
    // Chengdu data in the paper's Table 2.
    let mut rng = deepod_tensor::rng_from_seed(0xF1EE7);
    let raws: Vec<_> = ds
        .train
        .iter()
        .take(120)
        .map(|o| {
            sample_gps(
                &ds.net,
                &o.trajectory,
                3.0,
                GpsNoise { sigma: 8.0 },
                &mut rng,
            )
        })
        .collect();
    let total_points: usize = raws.iter().map(|r| r.points.len()).sum();
    println!("  {} trips, {} raw GPS points", raws.len(), total_points);

    // Map-match back onto the network (the paper uses Valhalla here).
    let grid = SpatialGrid::build(&ds.net, 250.0);
    let matcher = HmmMapMatcher::new(&ds.net, &grid, MapMatchConfig::default());
    let t0 = std::time::Instant::now();
    let matched: Vec<_> = raws
        .iter()
        .filter_map(|r| matcher.match_trajectory(r))
        .collect();
    let match_time = t0.elapsed().as_secs_f64();
    println!(
        "  matched {}/{} trips in {match_time:.1}s ({:.0} points/s)",
        matched.len(),
        raws.len(),
        total_points as f64 / match_time
    );

    // Mine per-road mean speeds and a time-of-day congestion profile from
    // the recovered spatio-temporal paths.
    let mut road_speed: HashMap<u32, (f64, u32)> = HashMap::new();
    let mut hour_speed: [(f64, u32); 24] = [(0.0, 0); 24];
    for m in &matched {
        for step in &m.path {
            let dur = step.duration().max(1e-6);
            let v = ds.net.edge(step.edge).length / dur;
            if !(0.3..45.0).contains(&v) {
                continue; // interpolation artifacts on tiny segments
            }
            let e = road_speed.entry(step.edge.0).or_insert((0.0, 0));
            e.0 += v;
            e.1 += 1;
            let hour = ((step.enter % 86_400.0) / 3600.0) as usize % 24;
            hour_speed[hour].0 += v;
            hour_speed[hour].1 += 1;
        }
    }

    println!("\n  observed road segments: {}", road_speed.len());
    let mut slowest: Vec<(u32, f64)> = road_speed
        .iter()
        .filter(|(_, (_, n))| *n >= 3)
        .map(|(&id, &(s, n))| (id, s / n as f64))
        .collect();
    slowest.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!("  five slowest well-observed segments (m/s):");
    for (id, v) in slowest.iter().take(5) {
        let e = ds.net.edge(deepod_roadnet::EdgeId(*id));
        println!(
            "    segment {id:>4}: {v:.1} m/s ({:?}, {:.0} m long)",
            e.class, e.length
        );
    }

    println!("\n  time-of-day speed profile (fleet average, m/s):");
    for (h, &(s, n)) in hour_speed.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let v = s / n as f64;
        let bar = "#".repeat((v * 2.0) as usize);
        println!("    {h:>2}:00  {v:5.1}  {bar}");
    }

    // The rush-hour dip should be visible — quantify it.
    let speed_at = |h: usize| {
        let (s, n) = hour_speed[h];
        if n > 0 {
            s / n as f64
        } else {
            f64::NAN
        }
    };
    let rush = speed_at(8);
    let night = speed_at(3);
    if rush.is_finite() && night.is_finite() {
        println!(
            "\n  8 am fleet speed {rush:.1} m/s vs 3 am {night:.1} m/s — congestion visible in mined data"
        );
    }
}

//! City explorer: inspect the synthetic substrate itself — the road
//! network, the routing engine, the traffic model's weekly rhythm and the
//! weather process. Useful for understanding what the learning problem
//! actually looks like before training anything.
//!
//! Run with: `cargo run --release -p deepod-bench --example city_explorer`

use deepod_roadnet::{time_dependent_route, CityConfig, CityProfile, NodeId, RoadClass, Router};
use deepod_traffic::{CongestionModel, IncidentModel, TrafficModel, WeatherProcess};

fn main() {
    for profile in [
        CityProfile::SynthChengdu,
        CityProfile::SynthXian,
        CityProfile::SynthBeijing,
    ] {
        let net = CityConfig::profile(profile).generate();
        let (min, max) = net.bounding_box();
        let mut by_class = std::collections::HashMap::new();
        for e in net.edges() {
            *by_class.entry(format!("{:?}", e.class)).or_insert(0usize) += 1;
        }
        println!(
            "{profile:?}: {} nodes, {} segments, {:.1} x {:.1} km, {:.0} km of road",
            net.num_nodes(),
            net.num_edges(),
            (max.x - min.x) / 1000.0,
            (max.y - min.y) / 1000.0,
            net.total_length() / 1000.0
        );
        let mut classes: Vec<_> = by_class.into_iter().collect();
        classes.sort();
        for (c, n) in classes {
            println!("    {c:<10} {n}");
        }
    }

    // Deep dive on Chengdu: routing and traffic.
    println!("\n--- synthetic Chengdu deep dive ---");
    let net = CityConfig::profile(CityProfile::SynthChengdu).generate();
    let mut rng = deepod_tensor::rng_from_seed(0xC17E);
    let weather = WeatherProcess::sample(14.0 * 86_400.0, 1800.0, &mut rng);
    let incidents = IncidentModel::sample(&net, 14.0 * 86_400.0, 6.0, &mut rng);
    let traffic = TrafficModel::new(&net, CongestionModel::default(), weather, &mut rng)
        .with_incidents(incidents);

    // A cross-river trip: compare static vs time-dependent routes.
    let router = Router::new(&net);
    let from = NodeId(3);
    let to = NodeId((net.num_nodes() - 4) as u32);
    if let Ok(static_route) = router.shortest_by_distance(from, to) {
        println!(
            "cross-town trip: {:.1} km over {} segments (shortest by distance)",
            static_route.length(&net) / 1000.0,
            static_route.edges.len()
        );
        for (label, depart) in [
            ("3 am", 3.0 * 3600.0),
            ("8 am", 8.0 * 3600.0),
            ("6 pm", 18.0 * 3600.0),
        ] {
            let depart = 86_400.0 + depart; // Tuesday
            if let Ok(r) = time_dependent_route(&net, from, to, depart, |e, t| {
                traffic.traversal_time(&net, e, t)
            }) {
                println!(
                    "  depart Tue {label:>5}: {:.0}s ({:.1} km route, {} segments)",
                    r.cost,
                    r.length(&net) / 1000.0,
                    r.edges.len()
                );
            }
        }
    }

    // Weekly speed rhythm of one arterial.
    let arterial = (0..net.num_edges())
        .map(|i| deepod_roadnet::EdgeId(i as u32))
        .find(|&e| net.edge(e).class == RoadClass::Arterial)
        .expect("city has arterials");
    println!("\nweekly speed rhythm of one arterial (m/s, Tue + Sat):");
    for day in [1usize, 5] {
        let name = if day == 1 { "Tue" } else { "Sat" };
        print!("  {name}: ");
        for hour in (0..24).step_by(3) {
            let t = day as f64 * 86_400.0 + hour as f64 * 3600.0;
            print!("{:>5.1}", traffic.speed(&net, arterial, t));
        }
        println!("   (00 03 06 09 12 15 18 21 h)");
    }

    // Weather timeline sample.
    println!("\nweather over the first three days (every 6 h):");
    for step in 0..12 {
        let t = step as f64 * 6.0 * 3600.0;
        let w = traffic.weather().at(t);
        print!("{}({:.2}) ", w.label(), w.speed_factor());
    }
    println!();

    println!(
        "\nactive incidents at Tue 8 am: {}",
        traffic
            .incidents()
            .active_at(86_400.0 + 8.0 * 3600.0)
            .count()
    );
}

//! ETA service: a ride-hailing-style scenario. Trains DeepOD once, then
//! serves a stream of simulated ride requests, comparing its live ETAs
//! against the TEMP fallback a cold-start deployment would use, and
//! measuring serving latency.
//!
//! Run with: `cargo run --release -p deepod-bench --example eta_service`

use deepod_baselines::{TempConfig, TempPredictor, TtePredictor};
use deepod_core::{DeepOdConfig, TrainOptions, Trainer};
use deepod_roadnet::{CityProfile, Point};
use deepod_traffic::WeatherType;
use deepod_traj::{DatasetBuilder, DatasetConfig, OdInput};
use rand::Rng;
use std::time::Instant;

fn main() {
    println!("ETA service demo — synthetic Xi'an");
    let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthXian, 1_200));
    println!(
        "  {} segments, {} historical orders",
        ds.net.num_edges(),
        ds.train.len() + ds.validation.len() + ds.test.len()
    );

    // Train the production model.
    let cfg = DeepOdConfig {
        epochs: 8,
        batch_size: 16,
        loss_weight: 0.3,
        ..Default::default()
    };
    let mut trainer = Trainer::new(&ds, cfg, TrainOptions::default()).expect("valid config");
    let report = trainer.train();
    println!("  model trained: best val MAE {:.1}s", report.best_val_mae);

    // Cold-start fallback: TEMP over the same history.
    let mut temp = TempPredictor::new(TempConfig::default());
    temp.fit(&ds);

    // Serve a stream of requests in the test window.
    let (min, max) = ds.net.bounding_box();
    let mut rng = deepod_tensor::rng_from_seed(0xE7A);
    let t_start = (ds.config.train_days + ds.config.val_days) as f64 * 86_400.0;
    let n_requests = 200;

    println!("\nserving {n_requests} ride requests ...");
    let mut served = 0u32;
    let mut latency_model = 0.0f64;
    let mut latency_temp = 0.0f64;
    let mut disagreement = 0.0f32;

    for i in 0..n_requests {
        let req = OdInput {
            origin: Point::new(rng.gen_range(min.x..max.x), rng.gen_range(min.y..max.y)),
            destination: Point::new(rng.gen_range(min.x..max.x), rng.gen_range(min.y..max.y)),
            depart: t_start + rng.gen_range(0.0..ds.config.test_days as f64 * 86_400.0),
            weather: WeatherType(rng.gen_range(0..4)),
        };

        let t0 = Instant::now();
        let eta_model = trainer.predict_od(&req);
        latency_model += t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let eta_temp = temp.predict(&req);
        latency_temp += t0.elapsed().as_secs_f64();

        if let (Some(m), Some(t)) = (eta_model, eta_temp) {
            served += 1;
            disagreement += (m - t).abs();
            if i < 5 {
                println!(
                    "  request {i}: DeepOD {m:>6.0}s | TEMP {t:>6.0}s | {:.1} km crow-fly",
                    req.origin.dist(&req.destination) / 1000.0
                );
            }
        }
    }

    println!("\nserved {served}/{n_requests} requests (rest off-network)");
    println!(
        "mean latency: DeepOD {:.2} ms, TEMP {:.2} ms",
        1e3 * latency_model / n_requests as f64,
        1e3 * latency_temp / n_requests as f64
    );
    println!(
        "mean |DeepOD − TEMP| disagreement: {:.0}s",
        disagreement / served.max(1) as f32
    );

    // Ground-truth check on real test orders (where we know the answer).
    let preds = trainer.predict_orders(&ds.test);
    let mut mae = 0.0f32;
    let mut n = 0u32;
    for (p, o) in preds.iter().zip(&ds.test) {
        if let Some(p) = p {
            mae += (p - o.travel_time as f32).abs();
            n += 1;
        }
    }
    println!(
        "reference: DeepOD test MAE on labeled trips {:.1}s ({n} trips)",
        mae / n as f32
    );
}

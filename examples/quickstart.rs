//! Quickstart: generate a synthetic city, train DeepOD, and estimate the
//! travel time of a fresh OD query.
//!
//! Run with: `cargo run --release -p deepod-bench --example quickstart`

use deepod_core::{DeepOdConfig, EmbeddingInit, TrainOptions, Trainer};
use deepod_roadnet::CityProfile;
use deepod_traj::{DatasetBuilder, DatasetConfig};

fn main() {
    // 1. Build a city dataset: road network + traffic ground truth +
    //    simulated taxi orders, split chronologically train/val/test.
    println!("building synthetic Chengdu with 1 500 taxi orders ...");
    let ds = DatasetBuilder::build(&DatasetConfig::for_profile(
        CityProfile::SynthChengdu,
        1_500,
    ));
    println!(
        "  {} road segments, {} train / {} validation / {} test orders",
        ds.net.num_edges(),
        ds.train.len(),
        ds.validation.len(),
        ds.test.len()
    );

    // 2. Configure DeepOD. The defaults are laptop-scale; here we shrink a
    //    little further so the example runs in ~30 s.
    let cfg = DeepOdConfig {
        epochs: 8,
        batch_size: 16,
        loss_weight: 0.3,
        init: EmbeddingInit::Node2Vec,
        ..DeepOdConfig::default()
    };

    // 3. Train (offline phase of Alg. 1). The trainer encodes orders,
    //    pre-trains the embeddings on the road line graph and the weekly
    //    temporal graph, and runs minibatch Adam with the combined loss.
    println!("training DeepOD ({} epochs) ...", cfg.epochs);
    let mut trainer = Trainer::new(&ds, cfg, TrainOptions::default()).expect("valid config");
    let report = trainer.train();
    println!(
        "  trained in {:.1}s — best validation MAE {:.1}s",
        report.total_time_s, report.best_val_mae
    );

    // 4. Online estimation: only the OD input is used (no trajectory).
    let order = &ds.test[0];
    let predicted = trainer
        .predict_od(&order.od)
        .expect("query matched to road network");
    println!("\nsample query:");
    println!(
        "  origin  ({:.0} m, {:.0} m)   destination ({:.0} m, {:.0} m)",
        order.od.origin.x, order.od.origin.y, order.od.destination.x, order.od.destination.y
    );
    println!(
        "  departure t = {:.0}s, weather = {}",
        order.od.depart,
        order.od.weather.label()
    );
    println!("  predicted travel time: {predicted:.0}s");
    println!("  actual travel time:    {:.0}s", order.travel_time);

    // 5. Aggregate test error.
    let preds = trainer.predict_orders(&ds.test);
    let mut mae = 0.0f32;
    let mut n = 0u32;
    for (p, o) in preds.iter().zip(&ds.test) {
        if let Some(p) = p {
            mae += (p - o.travel_time as f32).abs();
            n += 1;
        }
    }
    println!("\ntest MAE over {n} trips: {:.1}s", mae / n as f32);
}

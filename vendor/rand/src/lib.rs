//! Vendored, dependency-free stand-in for the subset of the `rand` 0.8 API
//! this workspace uses. The registry is unavailable in the build environment,
//! so the workspace pins `rand = { path = "vendor/rand" }`.
//!
//! Determinism contract: [`rngs::StdRng::seed_from_u64`] uses SplitMix64 to
//! expand the seed into xoshiro256** state, and every sampling method is a
//! pure function of the stream, so a fixed seed yields a fixed sequence on
//! every platform. (The concrete stream differs from upstream `rand`'s
//! `StdRng`, which is explicitly allowed to change between versions anyway.)

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniformly-distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly-distributed 32-bit word (high bits of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value domain
/// (`rng.gen::<T>()`). Floats sample from `[0, 1)`.
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full single precision.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Element types that can be drawn uniformly from a range. The blanket
/// [`SampleRange`] impls below are generic over this trait (mirroring
/// upstream), which is what lets float literals in `gen_range(-0.5..0.5)`
/// unify with a surrounding `f32` expression instead of defaulting to `f64`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Uniform integer in `[0, width)` via the widening-multiply reduction
/// (Lemire without the rejection step; bias is < 2^-32 for the widths used
/// here and irrelevant for simulation workloads).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    ((rng.next_u64() as u128 * width as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let width = if inclusive {
                    assert!(lo <= hi, "gen_range: empty inclusive range");
                    (hi as i128 - lo as i128) as u64 + 1
                } else {
                    assert!(lo < hi, "gen_range: empty integer range");
                    (hi as i128 - lo as i128) as u64
                };
                (lo as i128 + uniform_below(rng, width) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty inclusive float range");
                } else {
                    assert!(lo < hi, "gen_range: empty float range");
                }
                let f: $t = StandardSample::sample_standard(rng);
                lo + f * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges that can produce a uniform sample (`rng.gen_range(lo..hi)`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample over a type's standard domain (`[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        let f: f64 = StandardSample::sample_standard(self);
        f < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via SplitMix64, standing
    /// in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl StdRng {
        /// The full 256-bit generator state. Together with [`Self::from_state`]
        /// this lets checkpointing code snapshot an RNG mid-stream and later
        /// resume the *exact* sequence (upstream `rand` exposes the same
        /// capability through serde on the concrete rng types).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at a previously captured [`Self::state`].
        /// The all-zero state is the xoshiro fixed point (the stream would be
        /// constant zero), so it is mapped to the `seed_from_u64(0)` state.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                return Self::seed_from_u64(0);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let g: f32 = rng.gen_range(0.25f32..=0.75);
            assert!((0.25..=0.75).contains(&g));
        }
    }

    #[test]
    fn state_round_trip_resumes_exact_stream() {
        let mut a = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let snap = a.state();
        let tail: Vec<u64> = (0..50).map(|_| a.gen::<u64>()).collect();
        let mut b = StdRng::from_state(snap);
        let resumed: Vec<u64> = (0..50).map(|_| b.gen::<u64>()).collect();
        assert_eq!(tail, resumed);
        // Degenerate all-zero state maps to a usable generator.
        assert_ne!(StdRng::from_state([0; 4]).gen::<u64>(), 0);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn float_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}

//! Vendored, dependency-light stand-in for the subset of `rand_distr` 0.4
//! this workspace uses: `Distribution`, `Normal` (f32/f64) and `Uniform`
//! (f32/f64). Sampling is deterministic given the RNG stream: `Normal` draws
//! exactly two words per sample (Box–Muller without caching the second
//! variate), `Uniform` draws one.

use rand::{RngCore, StandardSample};
use std::fmt;

/// A distribution that can be sampled with any [`RngCore`].
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Floating-point scalars the distributions are generic over. A single
/// generic impl (rather than one per float width) keeps `Normal::new(a, b)`
/// unambiguous at call sites that rely on inference.
pub trait Float: Copy + PartialOrd {
    fn from_f64(x: f64) -> Self;
    fn into_f64(self) -> f64;
    fn is_finite(self) -> bool;
    fn zero() -> Self;
}

macro_rules! impl_float_scalar {
    ($($t:ty),*) => {$(
        impl Float for $t {
            fn from_f64(x: f64) -> Self { x as $t }
            fn into_f64(self) -> f64 { self as f64 }
            fn is_finite(self) -> bool { <$t>::is_finite(self) }
            fn zero() -> Self { 0.0 }
        }
    )*};
}

impl_float_scalar!(f32, f64);

/// Error returned by [`Normal::new`] for non-finite or negative spread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NormalError;

impl fmt::Display for NormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid normal distribution parameters")
    }
}

impl std::error::Error for NormalError {}

/// Gaussian distribution with the given mean and standard deviation.
#[derive(Clone, Copy, Debug)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

/// One standard-normal variate via Box–Muller (cosine branch only, so the
/// draw count per sample is fixed and the stream stays reproducible).
#[inline]
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1]: shift the 53-bit mantissa sample away from zero.
    let u1 = ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
    let u2: f64 = StandardSample::sample_standard(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl<F: Float> Normal<F> {
    /// Creates a normal distribution; errors when `std_dev` is negative or
    /// either parameter is non-finite.
    pub fn new(mean: F, std_dev: F) -> Result<Self, NormalError> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < F::zero() {
            return Err(NormalError);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        F::from_f64(self.mean.into_f64() + self.std_dev.into_f64() * standard_normal(rng))
    }
}

/// Uniform distribution over `[low, high)`.
#[derive(Clone, Copy, Debug)]
pub struct Uniform<F> {
    low: F,
    high: F,
}

impl<F: Float> Uniform<F> {
    /// Creates a uniform distribution over `[low, high)`; panics when the
    /// range is empty (matching `rand` 0.8's `Uniform::new`).
    pub fn new(low: F, high: F) -> Self {
        assert!(low < high, "Uniform::new called with low >= high");
        Uniform { low, high }
    }
}

impl<F: Float> Distribution<F> for Uniform<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        let f: f64 = StandardSample::sample_standard(rng);
        F::from_f64(self.low.into_f64() + f * (self.high.into_f64() - self.low.into_f64()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = Normal::new(3.0f64, 2.0).unwrap();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = Uniform::new(-1.5f32, 2.5);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((-1.5..2.5).contains(&x));
        }
    }
}

//! JSON value model, parser, and string escaping shared by the vendored
//! serde facade and `serde_json`.

use std::fmt;

/// Error produced while parsing or interpreting JSON.
#[derive(Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({})", self.0)
    }
}

impl std::error::Error for Error {}

/// A parsed JSON document. Numbers keep their raw text so 64-bit integers
/// round-trip without going through `f64`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Value>),
    /// Object as an ordered list of key/value pairs (struct-sized, so linear
    /// field lookup beats hashing).
    Obj(Vec<(String, Value)>),
}

/// Looks up a field of an object value; used by derived `Deserialize` impls.
pub fn obj_field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, Error> {
    match v {
        Value::Obj(pairs) => pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
        other => Err(Error::msg(format!(
            "expected object for field `{name}`, got {}",
            kind(other)
        ))),
    }
}

/// Requires an array value; used by derived and container impls.
pub fn expect_arr(v: &Value) -> Result<&[Value], Error> {
    match v {
        Value::Arr(items) => Ok(items),
        other => Err(Error::msg(format!("expected array, got {}", kind(other)))),
    }
}

/// Requires a string value; used by derived enum impls.
pub fn expect_str(v: &Value) -> Result<&str, Error> {
    match v {
        Value::Str(s) => Ok(s),
        other => Err(Error::msg(format!("expected string, got {}", kind(other)))),
    }
}

fn kind(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Num(_) => "number",
        Value::Str(_) => "string",
        Value::Arr(_) => "array",
        Value::Obj(_) => "object",
    }
}

/// Appends a JSON string literal (with quotes and escapes) to `out`.
pub fn escape_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document, rejecting trailing garbage.
pub fn parse(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::msg("unexpected end of input")),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(Error::msg(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(Error::msg(format!("expected `:` at byte {pos}")));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            if b[*pos] == b'-' {
                *pos += 1;
            }
            while *pos < b.len()
                && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos])
                .map_err(|_| Error::msg("invalid utf-8 in number"))?;
            Ok(Value::Num(text.to_string()))
        }
        Some(c) => Err(Error::msg(format!(
            "unexpected byte `{}` at {pos}",
            *c as char
        ))),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error::msg(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error::msg(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    let mut pending_high: Option<u16> = None;
    loop {
        match b.get(*pos) {
            None => return Err(Error::msg("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                if pending_high.is_some() {
                    return Err(Error::msg("unpaired surrogate in string"));
                }
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or_else(|| Error::msg("truncated escape"))?;
                *pos += 1;
                let simple = match esc {
                    b'"' => Some('"'),
                    b'\\' => Some('\\'),
                    b'/' => Some('/'),
                    b'b' => Some('\u{08}'),
                    b'f' => Some('\u{0C}'),
                    b'n' => Some('\n'),
                    b'r' => Some('\r'),
                    b't' => Some('\t'),
                    b'u' => None,
                    other => {
                        return Err(Error::msg(format!("bad escape `\\{}`", other as char)));
                    }
                };
                if let Some(c) = simple {
                    if pending_high.is_some() {
                        return Err(Error::msg("unpaired surrogate in string"));
                    }
                    out.push(c);
                    continue;
                }
                if *pos + 4 > b.len() {
                    return Err(Error::msg("truncated \\u escape"));
                }
                let hex = std::str::from_utf8(&b[*pos..*pos + 4])
                    .map_err(|_| Error::msg("invalid \\u escape"))?;
                let unit =
                    u16::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid \\u escape"))?;
                *pos += 4;
                match (pending_high.take(), unit) {
                    (None, 0xD800..=0xDBFF) => pending_high = Some(unit),
                    (None, 0xDC00..=0xDFFF) => {
                        return Err(Error::msg("unpaired low surrogate"));
                    }
                    (None, u) => out.push(char::from_u32(u as u32).unwrap()),
                    (Some(high), 0xDC00..=0xDFFF) => {
                        let c = 0x10000 + ((high as u32 - 0xD800) << 10) + (unit as u32 - 0xDC00);
                        out.push(
                            char::from_u32(c).ok_or_else(|| Error::msg("bad surrogate pair"))?,
                        );
                    }
                    (Some(_), _) => return Err(Error::msg("unpaired high surrogate")),
                }
            }
            Some(_) => {
                if pending_high.is_some() {
                    return Err(Error::msg("unpaired surrogate in string"));
                }
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| Error::msg("invalid utf-8 in string"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

//! Vendored offline stand-in for the subset of `serde` this workspace uses.
//!
//! Real serde separates the data model from the format; everything in this
//! workspace serializes to JSON through `serde_json`, so this facade collapses
//! the two: [`Serialize`] writes JSON text directly and [`Deserialize`] reads
//! from a parsed [`json::Value`]. The derive macros in `vendor/serde_derive`
//! generate impls of these traits for non-generic structs and fieldless
//! enums — exactly the shapes the workspace derives on.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasher, Hash};
use std::rc::Rc;
use std::sync::Arc;

/// Serialization to JSON text.
pub trait Serialize {
    /// Appends this value's JSON representation to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Deserialization from a parsed JSON value.
pub trait Deserialize: Sized {
    /// Reconstructs the value from JSON.
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error>;
}

// ---- integers -------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
                match v {
                    json::Value::Num(s) => s
                        .parse::<$t>()
                        .or_else(|_| {
                            // Tolerate float-formatted integers ("3.0").
                            s.parse::<f64>()
                                .map(|f| f as $t)
                                .map_err(|_| json::Error::msg(format!("bad integer `{s}`")))
                        }),
                    other => Err(json::Error::msg(format!(
                        "expected number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---- floats ---------------------------------------------------------------

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    // Rust's float Display is the shortest round-trip form.
                    out.push_str(&self.to_string());
                } else {
                    // JSON has no NaN/Inf; mirror serde_json's `null`.
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
                match v {
                    json::Value::Num(s) => s
                        .parse::<$t>()
                        .map_err(|_| json::Error::msg(format!("bad float `{s}`"))),
                    json::Value::Null => Ok(<$t>::NAN),
                    other => Err(json::Error::msg(format!(
                        "expected number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

// ---- scalars --------------------------------------------------------------

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Bool(b) => Ok(*b),
            other => Err(json::Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        json::escape_str(&self.to_string(), out);
    }
}

impl Deserialize for char {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        let s = json::expect_str(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(json::Error::msg("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        json::escape_str(self, out);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        json::escape_str(self, out);
    }
}

impl Deserialize for String {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        json::expect_str(v).map(str::to_string)
    }
}

impl Serialize for () {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("null");
    }
}

impl Deserialize for () {
    fn deserialize_json(_: &json::Value) -> Result<Self, json::Error> {
        Ok(())
    }
}

// ---- references and smart pointers ---------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

macro_rules! impl_smart_ptr {
    ($($ptr:ident),*) => {$(
        impl<T: Serialize + ?Sized> Serialize for $ptr<T> {
            fn serialize_json(&self, out: &mut String) {
                (**self).serialize_json(out);
            }
        }
        impl<T: Deserialize> Deserialize for $ptr<T> {
            fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
                T::deserialize_json(v).map($ptr::new)
            }
        }
    )*};
}

impl_smart_ptr!(Box, Rc, Arc);

// ---- containers -----------------------------------------------------------

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        json::expect_arr(v)?
            .iter()
            .map(T::deserialize_json)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        let items: Vec<T> = Vec::deserialize_json(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| json::Error::msg(format!("expected {N} elements, got {n}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(x) => x.serialize_json(out),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Null => Ok(None),
            other => T::deserialize_json(other).map(Some),
        }
    }
}

// Maps serialize as arrays of [key, value] pairs so non-string keys
// round-trip exactly; only the vendored parser ever reads this output.
macro_rules! serialize_map_body {
    ($self:ident, $out:ident) => {{
        $out.push('[');
        for (i, (k, v)) in $self.iter().enumerate() {
            if i > 0 {
                $out.push(',');
            }
            $out.push('[');
            k.serialize_json($out);
            $out.push(',');
            v.serialize_json($out);
            $out.push(']');
        }
        $out.push(']');
    }};
}

fn deserialize_pairs<K: Deserialize, V: Deserialize>(
    v: &json::Value,
) -> Result<Vec<(K, V)>, json::Error> {
    json::expect_arr(v)?
        .iter()
        .map(|pair| {
            let kv = json::expect_arr(pair)?;
            if kv.len() != 2 {
                return Err(json::Error::msg("expected [key, value] pair"));
            }
            Ok((K::deserialize_json(&kv[0])?, V::deserialize_json(&kv[1])?))
        })
        .collect()
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_json(&self, out: &mut String) {
        serialize_map_body!(self, out)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        Ok(deserialize_pairs::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        serialize_map_body!(self, out)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        Ok(deserialize_pairs::<K, V>(v)?.into_iter().collect())
    }
}

// ---- tuples ---------------------------------------------------------------

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+));*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
                let arr = json::expect_arr(v)?;
                let expected = 0usize $(+ { let _ = stringify!($idx); 1 })+;
                if arr.len() != expected {
                    return Err(json::Error::msg(format!(
                        "expected {expected}-tuple, got {} elements", arr.len()
                    )));
                }
                Ok(($($name::deserialize_json(&arr[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple!(
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(x: T) {
        let mut s = String::new();
        x.serialize_json(&mut s);
        let v = json::parse(&s).unwrap();
        assert_eq!(T::deserialize_json(&v).unwrap(), x, "json was {s}");
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(42u64);
        round_trip(u64::MAX);
        round_trip(-7i32);
        round_trip(3.25f32);
        round_trip(1.0e-12f64);
        round_trip(true);
        round_trip(String::from("hé \"quoted\"\n\\tab"));
        round_trip('x');
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1.5f32, -2.0, 0.0]);
        round_trip(Some(vec![1u32, 2, 3]));
        round_trip(None::<u32>);
        round_trip((1u8, -2i64, String::from("z")));
        let mut m = HashMap::new();
        m.insert(3usize, vec![0.5f32]);
        m.insert(9, vec![]);
        round_trip(m);
        round_trip(Arc::new(vec![1u8, 2]));
        round_trip([1u32, 2, 3]);
    }

    #[test]
    fn float_precision_survives() {
        for x in [f32::MIN_POSITIVE, 0.1f32, 1.0 / 3.0, f32::MAX, -0.0] {
            let mut s = String::new();
            x.serialize_json(&mut s);
            let v = json::parse(&s).unwrap();
            let back = f32::deserialize_json(&v).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s} -> {back}");
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(json::parse("{").is_err());
        assert!(json::parse("[1,]").is_err());
        assert!(json::parse("1 2").is_err());
        assert!(json::parse("\"\\q\"").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = json::parse(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(json::expect_str(&v).unwrap(), "é😀");
    }
}

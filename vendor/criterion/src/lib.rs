//! Vendored offline stand-in for the subset of `criterion` 0.5 this
//! workspace uses. Unlike most of the vendor shims this one does real work:
//! it warms up, auto-tunes an iteration count, takes timed samples, prints a
//! summary per benchmark, and (when `DEEPOD_BENCH_JSON=<path>` is set)
//! writes all results as machine-readable JSON so the perf trajectory can be
//! tracked across PRs.
//!
//! Command-line filtering works like upstream: `cargo bench -- <substr>`
//! runs only benchmarks whose id contains the substring.

pub use std::hint::black_box;

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// How batched inputs are grouped between timings; only the variants this
/// workspace names exist, and the measurement loop treats them identically
/// (fresh input per routine call, setup excluded from timing).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    PerIteration,
    SmallInput,
    LargeInput,
}

/// One benchmark's aggregated measurements, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct Stats {
    pub id: String,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
    pub samples: usize,
    pub iters_per_sample: u64,
}

fn registry() -> &'static Mutex<Vec<Stats>> {
    static REGISTRY: OnceLock<Mutex<Vec<Stats>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Measurement configuration and entry point, mirroring
/// `criterion::Criterion`'s builder-style API.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            filter,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget before sampling begins.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group; benchmark ids become `group/function`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            prefix: name.to_string(),
        }
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id.to_string(), f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            stats: None,
        };
        f(&mut b);
        match b.stats {
            Some(mut stats) => {
                stats.id = id.clone();
                println!(
                    "{id:<48} time: [{} {} {}]  ({} samples × {} iters)",
                    human_time(stats.min_ns),
                    human_time(stats.mean_ns),
                    human_time(stats.max_ns),
                    stats.samples,
                    stats.iters_per_sample,
                );
                registry().lock().unwrap().push(stats);
            }
            None => println!("{id:<48} (no measurement: bencher closure never called iter)"),
        }
    }
}

/// Group handle from [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{id}", self.prefix);
        self.c.run_one(full, f);
        self
    }

    /// Ends the group (upstream flushes reports here; the vendored shim
    /// reports eagerly, so this only exists for call-site compatibility).
    pub fn finish(self) {}
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    stats: Option<Stats>,
}

impl Bencher {
    /// Times `routine` back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up doubles as the per-iteration cost estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        let budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters = ((budget_ns / est_ns) as u64).max(1);

        let mut per_iter = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            per_iter.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.record(per_iter, iters);
    }

    /// Times `routine` on fresh inputs from `setup`; setup is untimed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut timed_ns = 0u128;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            timed_ns += t0.elapsed().as_nanos();
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = (timed_ns as f64 / warm_iters as f64).max(1.0);
        let budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters = ((budget_ns / est_ns) as u64).max(1);

        let mut per_iter = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut sample_ns = 0u128;
            for _ in 0..iters {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                sample_ns += t0.elapsed().as_nanos();
            }
            per_iter.push(sample_ns as f64 / iters as f64);
        }
        self.record(per_iter, iters);
    }

    fn record(&mut self, per_iter_ns: Vec<f64>, iters: u64) {
        let n = per_iter_ns.len().max(1) as f64;
        let mean = per_iter_ns.iter().sum::<f64>() / n;
        let min = per_iter_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter_ns.iter().cloned().fold(0.0f64, f64::max);
        self.stats = Some(Stats {
            id: String::new(),
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
            samples: per_iter_ns.len(),
            iters_per_sample: iters,
        });
    }
}

/// Records an externally computed result under the same registry the
/// timed benchmarks report through, so derived numbers (latency
/// percentiles from an open-loop run, throughput figures) land in the
/// same `DEEPOD_BENCH_JSON` file as the `b.iter` measurements. The
/// caller fills in every field, including `id`.
pub fn record_stats(stats: Stats) {
    println!(
        "{:<48} value: {}  ({} samples × {} iters)",
        stats.id,
        human_time(stats.mean_ns),
        stats.samples,
        stats.iters_per_sample,
    );
    registry().lock().unwrap().push(stats);
}

/// Writes every recorded benchmark to `DEEPOD_BENCH_JSON` (if set). Called
/// by the `criterion_main!` expansion after all groups run.
pub fn finalize() {
    let Ok(path) = std::env::var("DEEPOD_BENCH_JSON") else {
        return;
    };
    let results = registry().lock().unwrap();
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, s) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{\"id\": {:?}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \
             \"samples\": {}, \"iters_per_sample\": {}}}",
            s.id, s.mean_ns, s.min_ns, s.max_ns, s.samples, s.iters_per_sample
        ));
    }
    out.push_str("\n  ]\n}\n");
    match std::fs::write(&path, out) {
        Ok(()) => println!("wrote {} benchmark results to {path}", results.len()),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

/// Declares a benchmark group; both upstream forms are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut c = $cfg;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running every group then flushing
/// JSON output.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        c.filter = None;
        let mut group = c.benchmark_group("g");
        group.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..100 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            });
        });
        group.finish();
        let reg = registry().lock().unwrap();
        let stats = reg.iter().find(|s| s.id == "g/spin").expect("recorded");
        assert!(stats.mean_ns > 0.0);
    }

    #[test]
    fn record_stats_lands_in_registry() {
        record_stats(Stats {
            id: "ext/p99".to_string(),
            mean_ns: 42.0,
            min_ns: 42.0,
            max_ns: 42.0,
            samples: 100,
            iters_per_sample: 1,
        });
        let reg = registry().lock().unwrap();
        let s = reg.iter().find(|s| s.id == "ext/p99").expect("recorded");
        assert_eq!(s.samples, 100);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        c.filter = None;
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::PerIteration);
        });
    }
}

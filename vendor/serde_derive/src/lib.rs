//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! offline serde facade in `vendor/serde`.
//!
//! Scope is exactly what this workspace derives on: non-generic structs
//! (named, tuple, unit) and fieldless enums, with no `#[serde(...)]`
//! attributes. Anything outside that scope produces a `compile_error!` naming
//! the construct, so unsupported uses fail loudly at build time rather than
//! silently misbehaving.
//!
//! The implementation parses the raw token stream directly (no `syn`/`quote`,
//! which are unavailable offline) and emits code by formatting strings and
//! reparsing them — `proc_macro::TokenStream: FromStr` makes that reliable.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    FieldlessEnum { name: String, variants: Vec<String> },
}

/// Skips attribute (`#[...]`) and visibility (`pub`, `pub(...)`) tokens
/// starting at `*i`.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Counts top-level (angle-depth 0) comma-separated items in a token slice.
/// Used for tuple-struct arity; commas inside `<...>` or sub-groups don't
/// count because groups are atomic tokens and angle depth is tracked.
fn top_level_arity(toks: &[TokenTree]) -> usize {
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut arity = 1;
    let mut saw_item = false;
    for t in toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                arity += 1;
            }
            _ => saw_item = true,
        }
    }
    // Tolerate a trailing comma.
    if let Some(TokenTree::Punct(p)) = toks.last() {
        if p.as_char() == ',' {
            arity -= 1;
        }
    }
    if !saw_item {
        0
    } else {
        arity
    }
}

/// Extracts field names from a named-struct body.
fn named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attrs_and_vis(body, &mut i);
        if i >= body.len() {
            break;
        }
        let name = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Skip the type: consume until a comma at angle-depth 0.
        let mut depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Extracts variant names from an enum body, rejecting data-carrying
/// variants.
fn enum_variants(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attrs_and_vis(body, &mut i);
        if i >= body.len() {
            break;
        }
        let name = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        i += 1;
        match body.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip until comma.
                while i < body.len() {
                    if matches!(&body[i], TokenTree::Punct(p) if p.as_char() == ',') {
                        i += 1;
                        break;
                    }
                    i += 1;
                }
            }
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "variant `{name}` carries data; vendored serde_derive only supports fieldless enums"
                ));
            }
            Some(other) => {
                return Err(format!(
                    "unexpected token after variant `{name}`: `{other}`"
                ))
            }
        }
        variants.push(name);
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "type `{name}` is generic; vendored serde_derive only supports non-generic types"
        ));
    }
    match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::NamedStruct {
                    name,
                    fields: named_fields(&body)?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::TupleStruct {
                    name,
                    arity: top_level_arity(&body),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::FieldlessEnum {
                    name,
                    variants: enum_variants(&body)?,
                })
            }
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

/// Wraps an impl in `const _: () = {{ extern crate serde as _serde; ... }};`
/// so the generated code resolves `serde` even if the caller shadowed the
/// name (the same trick upstream serde_derive uses).
fn wrap(body: String) -> TokenStream {
    format!("const _: () = {{ extern crate serde as _serde; {body} }};")
        .parse()
        .expect("vendored serde_derive generated invalid Rust")
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let body = match item {
        Item::NamedStruct { name, fields } => {
            let mut b = String::from("out.push('{');");
            for (idx, f) in fields.iter().enumerate() {
                if idx > 0 {
                    b.push_str("out.push(',');");
                }
                b.push_str(&format!(
                    "out.push_str({:?});_serde::Serialize::serialize_json(&self.{f}, out);",
                    format!("\"{f}\":")
                ));
            }
            b.push_str("out.push('}');");
            format!(
                "impl _serde::Serialize for {name} {{ \
                   fn serialize_json(&self, out: &mut ::std::string::String) {{ {b} }} }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let mut b = String::from("out.push('[');");
            for idx in 0..arity {
                if idx > 0 {
                    b.push_str("out.push(',');");
                }
                b.push_str(&format!("_serde::Serialize::serialize_json(&self.{idx}, out);"));
            }
            b.push_str("out.push(']');");
            format!(
                "impl _serde::Serialize for {name} {{ \
                   fn serialize_json(&self, out: &mut ::std::string::String) {{ {b} }} }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl _serde::Serialize for {name} {{ \
               fn serialize_json(&self, out: &mut ::std::string::String) {{ out.push_str(\"null\"); }} }}"
        ),
        Item::FieldlessEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => out.push_str({:?}),", format!("\"{v}\"")))
                .collect();
            format!(
                "impl _serde::Serialize for {name} {{ \
                   fn serialize_json(&self, out: &mut ::std::string::String) {{ \
                     match self {{ {arms} }} }} }}"
            )
        }
    };
    wrap(body)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let body = match item {
        Item::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: _serde::Deserialize::deserialize_json(\
                           _serde::json::obj_field(v, {:?})?)?,",
                        f
                    )
                })
                .collect();
            format!(
                "impl _serde::Deserialize for {name} {{ \
                   fn deserialize_json(v: &_serde::json::Value) \
                     -> ::std::result::Result<Self, _serde::json::Error> {{ \
                     ::std::result::Result::Ok({name} {{ {inits} }}) }} }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let elems: String = (0..arity)
                .map(|i| format!("_serde::Deserialize::deserialize_json(&arr[{i}])?,"))
                .collect();
            format!(
                "impl _serde::Deserialize for {name} {{ \
                   fn deserialize_json(v: &_serde::json::Value) \
                     -> ::std::result::Result<Self, _serde::json::Error> {{ \
                     let arr = _serde::json::expect_arr(v)?; \
                     if arr.len() != {arity} {{ \
                       return ::std::result::Result::Err(_serde::json::Error::msg(\
                         format!(\"expected {arity} elements for {name}, got {{}}\", arr.len()))); }} \
                     ::std::result::Result::Ok({name}({elems})) }} }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl _serde::Deserialize for {name} {{ \
               fn deserialize_json(v: &_serde::json::Value) \
                 -> ::std::result::Result<Self, _serde::json::Error> {{ \
                 let _ = v; ::std::result::Result::Ok({name}) }} }}"
        ),
        Item::FieldlessEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{:?} => ::std::result::Result::Ok({name}::{v}),", v))
                .collect();
            format!(
                "impl _serde::Deserialize for {name} {{ \
                   fn deserialize_json(v: &_serde::json::Value) \
                     -> ::std::result::Result<Self, _serde::json::Error> {{ \
                     match _serde::json::expect_str(v)? {{ {arms} \
                       other => ::std::result::Result::Err(_serde::json::Error::msg(\
                         format!(\"unknown variant `{{other}}` for {name}\"))) }} }} }}"
            )
        }
    };
    wrap(body)
}

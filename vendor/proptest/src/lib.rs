//! Vendored offline stand-in for the subset of `proptest` this workspace
//! uses: the `proptest!` macro with optional `#![proptest_config(...)]`,
//! range/tuple/`any`/`collection::vec` strategies, `prop_map`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Compared to upstream there is no shrinking: a failing case panics with
//! the case index and RNG seed, which is enough to reproduce (seeds are a
//! pure function of the case index, so reruns are deterministic).

use rand::SeedableRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// RNG handed to strategies; deterministic per test case.
pub type TestRng = rand::rngs::StdRng;

/// Generates values of `Self::Value` from an RNG.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T> Strategy for Range<T>
where
    Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rand::SampleRange::sample_single(self.clone(), rng)
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rand::SampleRange::sample_single(self.clone(), rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+));*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// Types with a canonical "anything goes" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                <u64 as rand::StandardSample>::sample_standard(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::StandardSample::sample_standard(rng)
    }
}

macro_rules! impl_arbitrary_float {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Unit interval, not the full bit domain: every property in
                // this workspace treats `any` floats as generic magnitudes.
                rand::StandardSample::sample_standard(rng)
            }
        }
    )*};
}

impl_arbitrary_float!(f32, f64);

/// Strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Element-count bound for [`vec`].
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy producing vectors whose elements come from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rand::Rng::gen_range(rng, self.size.lo..=self.size.hi);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Runner configuration (`#![proptest_config(ProptestConfig::with_cases(n))]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Drives one property over `cases` deterministic seeds.
pub struct TestRunner {
    cfg: ProptestConfig,
}

impl TestRunner {
    pub fn new(cfg: ProptestConfig) -> Self {
        TestRunner { cfg }
    }

    /// Runs `f` once per case; panics with case index and seed on failure.
    pub fn run<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), String>,
    {
        for case in 0..self.cfg.cases {
            // Deterministic per-case seed so failures reproduce exactly.
            let seed = 0xDEE9_0D00_u64 ^ ((case as u64) << 32) ^ (case as u64).wrapping_mul(0x9E37);
            let mut rng = TestRng::seed_from_u64(seed);
            if let Err(msg) = f(&mut rng) {
                panic!(
                    "[{name}] property failed at case {case}/{} (seed {seed:#x}): {msg}",
                    self.cfg.cases
                );
            }
        }
    }
}

/// Declares property tests. Mirrors upstream's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn prop(x in 0usize..10, y in any::<u64>()) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new($cfg);
            runner.run(stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)*
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    (($cfg:expr)) => {};
}

/// Asserts inside a property; failure aborts only the current case runner
/// with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`", __l, __r
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, f in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f), "f = {f}");
        }

        #[test]
        fn tuples_and_maps(pair in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 20);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0i32..5, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_case_info() {
        let mut runner = crate::TestRunner::new(ProptestConfig::with_cases(4));
        runner.run("always_fails", |_| Err("nope".to_string()));
    }
}

//! Vendored offline stand-in for the `serde_json` entry points this
//! workspace uses (`to_string`, `from_str`, `Error`). The heavy lifting —
//! value model, parser, escaping — lives in `serde::json` so the derive
//! macros can reference it through the `serde` crate alone.

pub use serde::json::{Error, Value};

/// Serializes a value to a compact JSON string.
///
/// Always `Ok` for the JSON-direct trait in the vendored facade; the
/// `Result` return mirrors upstream so call sites (`?`, `.unwrap()`)
/// compile unchanged.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Parses a JSON string into a value of type `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = serde::json::parse(s)?;
    T::deserialize_json(&v)
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_round_trip() {
        let x = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let s = super::to_string(&x).unwrap();
        let back: Vec<(u32, String)> = super::from_str(&s).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn errors_are_displayable() {
        let e = super::from_str::<u32>("not json").unwrap_err();
        assert!(!e.to_string().is_empty());
    }
}

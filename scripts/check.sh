#!/usr/bin/env bash
# Full local gate: release build, test suite, and warning-free clippy.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings

#!/usr/bin/env bash
# Full local gate. Cheap static stages run first (formatting, clippy,
# deepod-lint, deepod-audit) so a style slip or invariant violation
# fails in seconds, before the multi-minute build/test stages; per-stage
# wall-clock timings print at the end.
# Run from anywhere; operates on the workspace containing this script.
# Any failing step (including lint/audit findings) exits nonzero.
set -euo pipefail
cd "$(dirname "$0")/.."

TIMINGS=()
stage() {
  local name=$1
  shift
  local t0 t1
  t0=$(date +%s)
  "$@"
  t1=$(date +%s)
  TIMINGS+=("$(printf '%-16s %4ds' "$name" "$((t1 - t0))")")
}

# Net stage body: the serve_net integration suite, then a smoke run of
# the open-loop load generator against a 1-epoch throwaway model — the
# report goes to a temp file so a smoke sweep never clobbers the
# checked-in BENCH_serve.json numbers.
run_net_stage() {
  cargo test -q -p deepod-cli --test serve_net
  local tmp
  tmp=$(mktemp -d)
  ./target/release/deepod simulate --profile chengdu --orders 60 --out "$tmp/city.json" >/dev/null
  ./target/release/deepod train --data "$tmp/city.json" --epochs 1 --out "$tmp/model.json" >/dev/null
  ./target/release/deepod bench-serve --data "$tmp/city.json" --model "$tmp/model.json" \
    --smoke --out "$tmp/BENCH_serve.json"
  rm -rf "$tmp"
}

report() {
  echo
  echo "check.sh stage timings:"
  local line
  for line in "${TIMINGS[@]}"; do
    echo "  $line"
  done
}
trap report EXIT

# --- cheap static gates first ---------------------------------------------
stage fmt        cargo fmt --check
stage clippy     cargo clippy --workspace --all-targets -- -D warnings
# Per-line invariant checker (token level: determinism, panic hygiene,
# numeric hygiene, parallel serial-equivalence coverage).
stage lint       cargo run -q -p xtask -- lint
# Call-graph analyses (flow level: no-panic certification of the serving
# hot path, unsafe/SIMD safety, lock order, metrics consistency) gated on
# zero unbaselined findings against audit-baseline.json.
stage audit      cargo run -q -p xtask -- audit

# --- build + test ----------------------------------------------------------
stage build      cargo build --release
stage test       cargo test -q
# Fault-injection stage: drives the real `deepod` binary under several
# DEEPOD_FAILPOINTS schedules (epoch-boundary kill, mid-epoch step kill,
# injected worker panic, torn-rename crash) and asserts lossless,
# bit-identical resume plus checksum rejection of corrupt checkpoints.
stage crash      cargo test -q -p deepod-cli --test crash_resume
# Observability stage: JSON-log golden format, checksummed metrics.json
# artifact contents, obs-on/off bit-identity, thread-invariant counters,
# and hard rejection of malformed DEEPOD_FAILPOINTS (exit 78).
stage obs        cargo test -q -p deepod-cli --test observability
# Serving stage: drives `deepod serve` over its stdin/stdout JSON
# protocol — 1000 requests through one process in input order,
# queue-full backpressure under --reject-when-full, and corrupt-model
# degradation to route-tte fallback answers with exit code 2.
stage serve      cargo test -q -p deepod-cli --test serve
# Chaos stage: the same binary under DEEPOD_FAILPOINTS fault schedules
# aimed at the serving engine (worker panic, slow batch, dropped reply,
# saturation) — exactly one reply per request, supervised restarts
# counted, deadlines swept, and single-worker bit-identity preserved.
stage chaos      cargo test -q -p deepod-cli --test serve_chaos
# Network stage: the TCP front end end to end (DESIGN.md §16) —
# concurrent clients answered exactly once, per-connection in-flight
# shedding isolated from polite clients, typed protocol rejects that do
# not kill the connection, clean drain on stdin close, stdin-mode byte
# identity, and worker-crash chaos; then a smoke run of the open-loop
# load generator writing its sweep to a throwaway report.
stage net        run_net_stage
# Cache stage: the serving-cache tier end to end (DESIGN.md §15) —
# precompute writes a fingerprinted OD-oracle artifact, canonical
# requests hit it without touching the queue, LRU repeats answer
# bit-identically to the cacheless path, TTL slot rollover expires
# entries, and a corrupt or mismatched oracle degrades to cacheless
# serving instead of wrong answers.
stage cache      cargo test -q -p deepod-cli --test serve_cache
# Kernel stage: property tests proving the packed/SIMD matmul, matvec,
# axpy, and int8 paths bit-identical to the scalar reference (DESIGN.md
# §12 determinism contract), then the eval-side precision gate on a
# fixture model — int8 MAPE must stay within the configured delta of f32.
stage kernels    cargo test -q -p deepod-tensor --test kernel_props
stage precision  cargo test -q -p deepod-eval precision

#!/usr/bin/env bash
# Full local gate: release build, test suite, warning-free clippy,
# formatting, and the workspace invariant checker (deepod-lint).
# Run from anywhere; operates on the workspace containing this script.
# Any failing step (including lint findings) exits nonzero.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
cargo run -q -p xtask -- lint

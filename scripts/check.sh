#!/usr/bin/env bash
# Full local gate: release build, test suite, fault injection,
# warning-free clippy, formatting, and the workspace invariant checker
# (deepod-lint).
# Run from anywhere; operates on the workspace containing this script.
# Any failing step (including lint findings) exits nonzero.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
# Fault-injection stage: drives the real `deepod` binary under several
# DEEPOD_FAILPOINTS schedules (epoch-boundary kill, mid-epoch step kill,
# injected worker panic, torn-rename crash) and asserts lossless,
# bit-identical resume plus checksum rejection of corrupt checkpoints.
cargo test -q -p deepod-cli --test crash_resume
# Observability stage: JSON-log golden format, checksummed metrics.json
# artifact contents, obs-on/off bit-identity, thread-invariant counters,
# and hard rejection of malformed DEEPOD_FAILPOINTS (exit 78).
cargo test -q -p deepod-cli --test observability
# Serving stage: drives `deepod serve` over its stdin/stdout JSON
# protocol — 1000 requests through one process in input order,
# queue-full backpressure under --reject-when-full, and corrupt-model
# degradation to route-tte fallback answers with exit code 2.
cargo test -q -p deepod-cli --test serve
# Kernel stage: property tests proving the packed/SIMD matmul, matvec,
# axpy, and int8 paths bit-identical to the scalar reference (DESIGN.md
# §12 determinism contract), then the eval-side precision gate on a
# fixture model — int8 MAPE must stay within the configured delta of f32.
cargo test -q -p deepod-tensor --test kernel_props
cargo test -q -p deepod-eval precision
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
cargo run -q -p xtask -- lint
